package interp

import (
	"focc/internal/cc/ast"
	"focc/internal/cc/token"
	"focc/internal/cc/types"
	"focc/internal/core"
	"focc/internal/mem"
)

// ctrl is the control-flow signal returned by statement execution.
type ctrl int

const (
	ctrlNone ctrl = iota
	ctrlBreak
	ctrlContinue
	ctrlReturn
	ctrlGoto
)

// lval is an evaluated lvalue. Direct accesses to named variables are
// "trusted": they are statically in bounds, so — like a real safe-C
// compiler — no dynamic check is emitted for them. Every pointer
// dereference and array index goes through the policy.
type lval struct {
	p       core.Pointer
	t       *types.Type
	trusted bool
}

// --- Statements ---

func (m *Machine) execBlock(b *ast.Block) ctrl {
	i := 0
	for i < len(b.Stmts) {
		c := m.execStmt(b.Stmts[i])
		if c == ctrlGoto {
			// Goto dispatch via the label table sema precomputed for this
			// block (lookup on a nil map misses, propagating the goto to
			// the enclosing block, like the statement scan it replaced).
			if idx, ok := b.LabelIdx[m.gotoLabel]; ok {
				i = idx
				continue
			}
			return c
		}
		if c != ctrlNone {
			return c
		}
		i++
	}
	return ctrlNone
}

func (m *Machine) execStmt(s ast.Stmt) ctrl {
	m.step()
	switch n := s.(type) {
	case *ast.Empty:
		return ctrlNone
	case *ast.Block:
		return m.execBlock(n)
	case *ast.ExprStmt:
		m.evalExpr(n.X)
		return ctrlNone
	case *ast.DeclStmt:
		for _, vd := range n.Decls {
			m.execLocalDecl(vd)
		}
		return ctrlNone
	case *ast.If:
		if m.evalExpr(n.Cond).Truthy() {
			return m.execStmt(n.Then)
		}
		if n.Else != nil {
			return m.execStmt(n.Else)
		}
		return ctrlNone
	case *ast.While:
		for m.evalExpr(n.Cond).Truthy() {
			m.step()
			switch c := m.execStmt(n.Body); c {
			case ctrlBreak:
				return ctrlNone
			case ctrlContinue, ctrlNone:
			default:
				return c
			}
		}
		return ctrlNone
	case *ast.DoWhile:
		for {
			m.step()
			switch c := m.execStmt(n.Body); c {
			case ctrlBreak:
				return ctrlNone
			case ctrlContinue, ctrlNone:
			default:
				return c
			}
			if !m.evalExpr(n.Cond).Truthy() {
				return ctrlNone
			}
		}
	case *ast.For:
		if n.Init != nil {
			m.execStmt(n.Init)
		}
		for n.Cond == nil || m.evalExpr(n.Cond).Truthy() {
			m.step()
			switch c := m.execStmt(n.Body); c {
			case ctrlBreak:
				return ctrlNone
			case ctrlContinue, ctrlNone:
			default:
				return c
			}
			if n.Post != nil {
				m.evalExpr(n.Post)
			}
		}
		return ctrlNone
	case *ast.Switch:
		return m.execSwitch(n)
	case *ast.CaseLabel:
		return ctrlNone
	case *ast.Break:
		return ctrlBreak
	case *ast.Continue:
		return ctrlContinue
	case *ast.Return:
		if n.X != nil {
			m.retVal = m.evalExpr(n.X)
		} else {
			m.retVal = Value{}
		}
		return ctrlReturn
	case *ast.Goto:
		m.gotoLabel = n.Label
		return ctrlGoto
	case *ast.Labeled:
		return m.execStmt(n.Stmt)
	}
	m.failf(s.Pos(), "unsupported statement %T", s)
	return ctrlNone
}

func (m *Machine) execSwitch(n *ast.Switch) ctrl {
	cond := m.evalExpr(n.Cond)
	start, ok := n.CaseIdx[cond.I]
	if !ok {
		start = n.DefaultIdx
	}
	if start < 0 {
		return ctrlNone
	}
	stmts := n.Body.Stmts
	i := start
	for i < len(stmts) {
		c := m.execStmt(stmts[i])
		switch c {
		case ctrlBreak:
			return ctrlNone
		case ctrlGoto:
			if idx, ok := n.Body.LabelIdx[m.gotoLabel]; ok {
				i = idx
				continue
			}
			return c
		case ctrlNone:
			i++
		default:
			return c
		}
	}
	return ctrlNone
}

func (m *Machine) execLocalDecl(vd *ast.VarDecl) {
	sym := vd.Sym
	u := m.frame.Local(sym.FrameOff)
	if u == nil {
		m.failf(vd.Pos(), "internal: no frame slot for %q", sym.Name)
	}
	if vd.Init == nil {
		// Uninitialized locals keep whatever bytes the stack arena holds
		// (realistically stale) — this is the Midnight Commander bug's
		// precondition.
		return
	}
	switch init := vd.Init.(type) {
	case *ast.InitList:
		m.zeroFill(u, 0, sym.Type.Size())
		m.initLocalAggregate(u, 0, sym.Type, init)
	case *ast.StringLit:
		if sym.Type.Kind == types.Array {
			m.zeroFill(u, 0, sym.Type.Size())
			lit := m.literals[init.LitIndex]
			n := uint64(len(lit.Data))
			if n > sym.Type.Size() {
				n = sym.Type.Size()
			}
			copy(u.Data[:n], lit.Data[:n])
			return
		}
		v := m.evalExpr(init)
		m.storeRaw(u, 0, sym.Type, m.convert(v, sym.Type, vd.Pos()))
	default:
		v := m.evalExpr(init)
		m.storeRaw(u, 0, sym.Type, m.convert(v, sym.Type, vd.Pos()))
	}
}

func (m *Machine) zeroFill(u *mem.Unit, off, n uint64) {
	for i := off; i < off+n; i++ {
		u.Data[i] = 0
	}
	u.ClearShadowRange(off, n)
}

func (m *Machine) initLocalAggregate(u *mem.Unit, off uint64, t *types.Type, il *ast.InitList) {
	switch t.Kind {
	case types.Array:
		es := t.Elem.Size()
		for i, e := range il.Elems {
			m.initLocalElem(u, off+uint64(i)*es, t.Elem, e)
		}
	case types.Struct:
		for i, e := range il.Elems {
			if i >= len(t.Rec.Fields) {
				break
			}
			f := t.Rec.Fields[i]
			m.initLocalElem(u, off+f.Offset, f.Type, e)
		}
	default:
		if len(il.Elems) == 1 {
			m.initLocalElem(u, off, t, il.Elems[0])
		}
	}
}

func (m *Machine) initLocalElem(u *mem.Unit, off uint64, t *types.Type, e ast.Expr) {
	if nested, ok := e.(*ast.InitList); ok {
		m.initLocalAggregate(u, off, t, nested)
		return
	}
	if s, ok := e.(*ast.StringLit); ok && t.Kind == types.Array {
		lit := m.literals[s.LitIndex]
		n := uint64(len(lit.Data))
		if n > t.Size() {
			n = t.Size()
		}
		copy(u.Data[off:off+n], lit.Data[:n])
		return
	}
	v := m.evalExpr(e)
	m.storeRaw(u, off, t, m.convert(v, t, e.Pos()))
}

// --- Expressions ---

func (m *Machine) evalExpr(e ast.Expr) Value {
	switch n := e.(type) {
	case *ast.IntLit:
		return Value{T: n.Type(), I: n.Val}
	case *ast.StringLit:
		u := m.literals[n.LitIndex]
		return Value{
			T:   types.PointerTo(types.CharType),
			Ptr: core.Pointer{Addr: u.Base, Prov: u},
		}
	case *ast.Ident:
		return m.evalIdent(n)
	case *ast.Unary:
		return m.evalUnary(n)
	case *ast.Postfix:
		lv := m.evalLvalue(n.X)
		old := m.loadLval(lv, n.Pos(), n.X)
		delta := int64(1)
		if n.Op == token.Dec {
			delta = -1
		}
		m.storeLval(lv, m.addDelta(old, delta, n.Pos()), n.Pos())
		return old
	case *ast.Binary:
		return m.evalBinary(n)
	case *ast.Assign:
		return m.evalAssign(n)
	case *ast.Cond:
		if m.evalExpr(n.C).Truthy() {
			return m.convert(m.evalExpr(n.Then), n.Type(), n.Pos())
		}
		return m.convert(m.evalExpr(n.Else), n.Type(), n.Pos())
	case *ast.Call:
		return m.evalCall(n)
	case *ast.Index, *ast.Member:
		lv := m.evalLvalue(e)
		if lv.t.IsArray() {
			return m.decayLval(lv)
		}
		// loadLval, open-coded: this is the hottest checked-access path.
		if lv.trusted {
			return m.loadRaw(lv.p.Prov, lv.p.Addr-lv.p.Prov.Base, lv.t, e)
		}
		return m.loadValue(lv.p, lv.t, e.Pos(), e)
	case *ast.Cast:
		return m.convert(m.evalExpr(n.X), n.To, n.Pos())
	case *ast.Comma:
		m.evalExpr(n.X)
		return m.evalExpr(n.Y)
	}
	m.failf(e.Pos(), "unsupported expression %T", e)
	return Value{}
}

func (m *Machine) decayLval(lv lval) Value {
	return Value{
		T:   types.PointerTo(lv.t.Elem),
		Ptr: lv.p,
	}
}

func (m *Machine) evalIdent(n *ast.Ident) Value {
	sym := n.Sym
	if sym == nil {
		m.failf(n.Pos(), "unresolved identifier %q", n.Name)
	}
	// Named variables are always trusted accesses at a known unit, so go
	// straight to loadRaw rather than building an lval and dispatching
	// through loadLval — this is the hottest path in the interpreter.
	var u *mem.Unit
	switch sym.Storage {
	case ast.StorageLocal, ast.StorageParam:
		u = m.frame.Local(sym.FrameOff)
		if u == nil {
			m.failf(n.Pos(), "internal: no frame slot for %q", sym.Name)
		}
	case ast.StorageGlobal:
		u = m.globals[sym.GlobalIdx]
	default:
		m.failf(n.Pos(), "symbol %q is not addressable", sym.Name)
	}
	t := sym.Type
	if t.IsArray() {
		return Value{
			T:   types.PointerTo(t.Elem),
			Ptr: core.Pointer{Addr: u.Base, Prov: u},
		}
	}
	if t.Kind == types.Func {
		m.failf(n.Pos(), "function %q used as a value (function pointers are unsupported)", n.Name)
	}
	return m.loadRaw(u, 0, t, n)
}

func (m *Machine) lvalOfSym(sym *ast.Symbol, pos token.Pos) lval {
	switch sym.Storage {
	case ast.StorageLocal, ast.StorageParam:
		u := m.frame.Local(sym.FrameOff)
		if u == nil {
			m.failf(pos, "internal: no frame slot for %q", sym.Name)
		}
		return lval{
			p:       core.Pointer{Addr: u.Base, Prov: u},
			t:       sym.Type,
			trusted: true,
		}
	case ast.StorageGlobal:
		u := m.globals[sym.GlobalIdx]
		return lval{
			p:       core.Pointer{Addr: u.Base, Prov: u},
			t:       sym.Type,
			trusted: true,
		}
	}
	m.failf(pos, "symbol %q is not addressable", sym.Name)
	return lval{}
}

func (m *Machine) evalLvalue(e ast.Expr) lval {
	switch n := e.(type) {
	case *ast.Ident:
		if n.Sym == nil {
			m.failf(n.Pos(), "unresolved identifier %q", n.Name)
		}
		return m.lvalOfSym(n.Sym, n.Pos())
	case *ast.Unary:
		if n.Op != token.Star {
			m.failf(n.Pos(), "expression is not an lvalue")
		}
		v := m.evalExpr(n.X)
		return lval{p: v.Ptr, t: n.Type()}
	case *ast.Index:
		base := m.evalExpr(n.X) // arrays decay here
		idx := m.evalExpr(n.Idx)
		es := n.Type().Size()
		addr := base.Ptr.Addr + uint64(idx.I)*es
		return lval{
			p: core.Pointer{Addr: addr, Prov: base.Ptr.Prov},
			t: n.Type(),
		}
	case *ast.Member:
		if n.Arrow {
			v := m.evalExpr(n.X)
			return lval{
				p: core.Pointer{Addr: v.Ptr.Addr + n.Field.Offset, Prov: v.Ptr.Prov},
				t: n.Field.Type,
			}
		}
		base := m.evalLvalue(n.X)
		return lval{
			p:       core.Pointer{Addr: base.p.Addr + n.Field.Offset, Prov: base.p.Prov},
			t:       n.Field.Type,
			trusted: base.trusted,
		}
	case *ast.StringLit:
		u := m.literals[n.LitIndex]
		return lval{p: core.Pointer{Addr: u.Base, Prov: u}, t: n.Type()}
	}
	m.failf(e.Pos(), "expression is not an lvalue (%T)", e)
	return lval{}
}

// loadLval reads through an lvalue; trusted (named variable) accesses skip
// the policy, exactly like uninstrumented direct accesses in a safe-C
// compiler. site is the AST node of the access expression (may be nil); it
// keys the per-site unit-lookup cache used when a loaded pointer needs
// object-table provenance recovery.
func (m *Machine) loadLval(lv lval, pos token.Pos, site ast.Node) Value {
	if lv.trusted {
		return m.loadRaw(lv.p.Prov, lv.p.Addr-lv.p.Prov.Base, lv.t, site)
	}
	return m.loadValue(lv.p, lv.t, pos, site)
}

func (m *Machine) storeLval(lv lval, v Value, pos token.Pos) {
	m.storeLvalConverted(lv, m.convert(v, lv.t, pos), pos)
}

// storeLvalConverted stores a value already converted to lv.t (callers
// that just converted — evalAssign — skip the second conversion
// storeLval would perform).
func (m *Machine) storeLvalConverted(lv lval, v Value, pos token.Pos) {
	if lv.trusted {
		m.storeRaw(lv.p.Prov, lv.p.Addr-lv.p.Prov.Base, lv.t, v)
		return
	}
	m.storeValue(lv.p, lv.t, v, pos)
}

// loadRaw reads a typed value directly from a unit (trusted access).
func (m *Machine) loadRaw(u *mem.Unit, off uint64, t *types.Type, site ast.Node) Value {
	m.simCycles += AccessCycles
	size := t.Size()
	switch {
	case t.IsPointer():
		addr := uint64(decodeLE(u.Data[off:off+8], false))
		prov := u.GetShadow(off)
		if prov == nil && addr != 0 {
			prov = m.findUnitAt(site, addr)
		}
		return Value{T: t, Ptr: core.Pointer{Addr: addr, Prov: prov}}
	case t.Kind == types.Struct:
		b := make([]byte, size)
		copy(b, u.Data[off:off+size])
		return Value{T: t, Bytes: b}
	default:
		return Value{T: t, I: decodeLE(u.Data[off:off+size], t.IsSigned())}
	}
}

// addDelta adds delta to an integer or steps a pointer by delta elements.
func (m *Machine) addDelta(v Value, delta int64, pos token.Pos) Value {
	if v.T.IsPointer() {
		es := int64(v.T.Elem.Size())
		if es == 0 {
			es = 1
		}
		return Value{T: v.T, Ptr: core.Pointer{
			Addr: v.Ptr.Addr + uint64(delta*es), Prov: v.Ptr.Prov,
		}}
	}
	return Value{T: v.T, I: types.Truncate(v.T, v.I+delta)}
}

func (m *Machine) evalUnary(n *ast.Unary) Value {
	switch n.Op {
	case token.Minus:
		v := m.evalExpr(n.X)
		return Value{T: n.Type(), I: types.Truncate(n.Type(), -v.I)}
	case token.Plus:
		v := m.evalExpr(n.X)
		return Value{T: n.Type(), I: types.Truncate(n.Type(), v.I)}
	case token.Tilde:
		v := m.evalExpr(n.X)
		return Value{T: n.Type(), I: types.Truncate(n.Type(), ^v.I)}
	case token.Bang:
		v := m.evalExpr(n.X)
		if v.Truthy() {
			return Value{T: types.IntType, I: 0}
		}
		return Value{T: types.IntType, I: 1}
	case token.Star:
		v := m.evalExpr(n.X)
		if n.Type().IsArray() {
			return Value{T: types.PointerTo(n.Type().Elem), Ptr: v.Ptr}
		}
		return m.loadValue(v.Ptr, n.Type(), n.Pos(), n)
	case token.Amp:
		lv := m.evalLvalue(n.X)
		return Value{T: n.Type(), Ptr: lv.p}
	case token.Inc, token.Dec:
		lv := m.evalLvalue(n.X)
		old := m.loadLval(lv, n.Pos(), n.X)
		delta := int64(1)
		if n.Op == token.Dec {
			delta = -1
		}
		nv := m.addDelta(old, delta, n.Pos())
		m.storeLval(lv, nv, n.Pos())
		return nv
	}
	m.failf(n.Pos(), "unsupported unary operator %s", n.Op)
	return Value{}
}

func (m *Machine) evalBinary(n *ast.Binary) Value {
	switch n.Op {
	case token.AndAnd:
		if !m.evalExpr(n.X).Truthy() {
			return Value{T: types.IntType, I: 0}
		}
		if m.evalExpr(n.Y).Truthy() {
			return Value{T: types.IntType, I: 1}
		}
		return Value{T: types.IntType, I: 0}
	case token.OrOr:
		if m.evalExpr(n.X).Truthy() {
			return Value{T: types.IntType, I: 1}
		}
		if m.evalExpr(n.Y).Truthy() {
			return Value{T: types.IntType, I: 1}
		}
		return Value{T: types.IntType, I: 0}
	}
	x := m.evalExpr(n.X)
	y := m.evalExpr(n.Y)
	return m.binaryOp(n.Op, x, y, n.Type(), n.Pos())
}

// binaryOp computes a (non-short-circuit) binary operation with C
// semantics; rt is the annotated result type.
func (m *Machine) binaryOp(op token.Kind, x, y Value, rt *types.Type, pos token.Pos) Value {
	xPtr := x.T != nil && x.T.IsPointer()
	yPtr := y.T != nil && y.T.IsPointer()
	switch op {
	case token.Plus:
		switch {
		case xPtr && !yPtr:
			return m.ptrAdd(x, y.I)
		case !xPtr && yPtr:
			return m.ptrAdd(y, x.I)
		}
	case token.Minus:
		switch {
		case xPtr && yPtr:
			es := int64(x.T.Elem.Size())
			if es == 0 {
				es = 1
			}
			return Value{T: types.LongType, I: (int64(x.Ptr.Addr) - int64(y.Ptr.Addr)) / es}
		case xPtr:
			return m.ptrAdd(x, -y.I)
		}
	}
	if isComparison(op) {
		return m.compare(op, x, y)
	}
	// Pure integer arithmetic in the common type rt.
	xv := m.convert(x, rt, pos).I
	yv := m.convert(y, rt, pos).I
	signed := rt.IsSigned()
	var r int64
	switch op {
	case token.Plus:
		r = xv + yv
	case token.Minus:
		r = xv - yv
	case token.Star:
		r = xv * yv
	case token.Slash:
		if yv == 0 {
			m.failf(pos, "division by zero")
		}
		if signed {
			r = xv / yv
		} else {
			r = int64(uint64(xv) / uint64(yv))
		}
	case token.Percent:
		if yv == 0 {
			m.failf(pos, "modulo by zero")
		}
		if signed {
			r = xv % yv
		} else {
			r = int64(uint64(xv) % uint64(yv))
		}
	case token.Amp:
		r = xv & yv
	case token.Pipe:
		r = xv | yv
	case token.Caret:
		r = xv ^ yv
	case token.Shl:
		r = xv << uint64(m.shiftCount(y))
	case token.Shr:
		if signed {
			r = xv >> uint64(m.shiftCount(y))
		} else {
			width := rt.Size() * 8
			ux := uint64(xv) & (^uint64(0) >> (64 - width))
			r = int64(ux >> uint64(m.shiftCount(y)))
		}
	default:
		m.failf(pos, "unsupported binary operator %s", op)
	}
	return Value{T: rt, I: types.Truncate(rt, r)}
}

func (m *Machine) shiftCount(v Value) int64 { return v.I & 63 }

func (m *Machine) ptrAdd(p Value, delta int64) Value {
	es := int64(p.T.Elem.Size())
	if es == 0 {
		es = 1
	}
	return Value{T: p.T, Ptr: core.Pointer{
		Addr: p.Ptr.Addr + uint64(delta*es), Prov: p.Ptr.Prov,
	}}
}

func isComparison(op token.Kind) bool {
	switch op {
	case token.Lt, token.Gt, token.Le, token.Ge, token.EqEq, token.NotEq:
		return true
	}
	return false
}

func (m *Machine) compare(op token.Kind, x, y Value) Value {
	b2v := func(b bool) Value {
		if b {
			return Value{T: types.IntType, I: 1}
		}
		return Value{T: types.IntType, I: 0}
	}
	if x.T == y.T && x.T != nil && x.T.IsInteger() {
		// Same-type integer compare: both values are already truncated
		// to the shared width, so compare directly with that type's
		// signedness (the promoted common type preserves order).
		if x.T.IsSigned() {
			switch op {
			case token.Lt:
				return b2v(x.I < y.I)
			case token.Gt:
				return b2v(x.I > y.I)
			case token.Le:
				return b2v(x.I <= y.I)
			case token.Ge:
				return b2v(x.I >= y.I)
			case token.EqEq:
				return b2v(x.I == y.I)
			case token.NotEq:
				return b2v(x.I != y.I)
			}
		}
		ux, uy := uint64(x.I), uint64(y.I)
		switch op {
		case token.Lt:
			return b2v(ux < uy)
		case token.Gt:
			return b2v(ux > uy)
		case token.Le:
			return b2v(ux <= uy)
		case token.Ge:
			return b2v(ux >= uy)
		case token.EqEq:
			return b2v(ux == uy)
		case token.NotEq:
			return b2v(ux != uy)
		}
	}
	xPtr := x.T != nil && (x.T.IsPointer())
	yPtr := y.T != nil && (y.T.IsPointer())
	if xPtr || yPtr {
		var xa, ya uint64
		if xPtr {
			xa = x.Ptr.Addr
		} else {
			xa = uint64(x.I)
		}
		if yPtr {
			ya = y.Ptr.Addr
		} else {
			ya = uint64(y.I)
		}
		switch op {
		case token.Lt:
			return b2v(xa < ya)
		case token.Gt:
			return b2v(xa > ya)
		case token.Le:
			return b2v(xa <= ya)
		case token.Ge:
			return b2v(xa >= ya)
		case token.EqEq:
			return b2v(xa == ya)
		case token.NotEq:
			return b2v(xa != ya)
		}
	}
	ct := types.UsualArith(promoteType(x.T), promoteType(y.T))
	xv := types.Truncate(ct, x.I)
	yv := types.Truncate(ct, y.I)
	if ct.IsSigned() {
		switch op {
		case token.Lt:
			return b2v(xv < yv)
		case token.Gt:
			return b2v(xv > yv)
		case token.Le:
			return b2v(xv <= yv)
		case token.Ge:
			return b2v(xv >= yv)
		case token.EqEq:
			return b2v(xv == yv)
		case token.NotEq:
			return b2v(xv != yv)
		}
	}
	ux, uy := uint64(xv), uint64(yv)
	switch op {
	case token.Lt:
		return b2v(ux < uy)
	case token.Gt:
		return b2v(ux > uy)
	case token.Le:
		return b2v(ux <= uy)
	case token.Ge:
		return b2v(ux >= uy)
	case token.EqEq:
		return b2v(ux == uy)
	case token.NotEq:
		return b2v(ux != uy)
	}
	return b2v(false)
}

func promoteType(t *types.Type) *types.Type {
	if t == nil || !t.IsInteger() {
		return types.LongType
	}
	return types.Promote(t)
}

func compoundOp(k token.Kind) (token.Kind, bool) {
	switch k {
	case token.PlusEq:
		return token.Plus, true
	case token.MinusEq:
		return token.Minus, true
	case token.StarEq:
		return token.Star, true
	case token.SlashEq:
		return token.Slash, true
	case token.PercentEq:
		return token.Percent, true
	case token.AmpEq:
		return token.Amp, true
	case token.PipeEq:
		return token.Pipe, true
	case token.CaretEq:
		return token.Caret, true
	case token.ShlEq:
		return token.Shl, true
	case token.ShrEq:
		return token.Shr, true
	}
	return k, false
}

func (m *Machine) evalAssign(n *ast.Assign) Value {
	if n.Op == token.Assign {
		v := m.evalExpr(n.RHS)
		lv := m.evalLvalue(n.LHS)
		v = m.convert(v, lv.t, n.Pos())
		m.storeLvalConverted(lv, v, n.Pos())
		return v
	}
	op, ok := compoundOp(n.Op)
	if !ok {
		m.failf(n.Pos(), "unsupported assignment operator %s", n.Op)
	}
	lv := m.evalLvalue(n.LHS)
	cur := m.loadLval(lv, n.Pos(), n.LHS)
	rhs := m.evalExpr(n.RHS)
	// The arithmetic happens in the usual common type, then converts back.
	var rt *types.Type
	if cur.T.IsPointer() {
		rt = cur.T
	} else if op == token.Shl || op == token.Shr {
		rt = types.Promote(cur.T)
	} else if pa, pb := promoteType(cur.T), promoteType(rhs.T); pa == pb {
		// Usual arithmetic conversions are an identity once both
		// promoted types agree (the overwhelmingly common case).
		rt = pa
	} else {
		rt = types.UsualArith(pa, pb)
	}
	res := m.binaryOp(op, cur, rhs, rt, n.Pos())
	res = m.convert(res, lv.t, n.Pos())
	m.storeLvalConverted(lv, res, n.Pos())
	return res
}

func (m *Machine) evalCall(n *ast.Call) Value {
	m.step()
	sym := n.Fun.Sym
	if sym == nil {
		m.failf(n.Pos(), "unresolved function %q", n.Fun.Name)
	}
	args := m.getArgs(len(n.Args))
	for i, a := range n.Args {
		v := m.evalExpr(a)
		// Default argument promotions for values; arrays decayed by eval.
		args[i] = v
	}
	if sym.Builtin {
		impl, ok := m.builtins[sym.Name]
		if !ok {
			m.failf(n.Pos(), "builtin %q has no host implementation", sym.Name)
		}
		v := impl(m, n.Pos(), args)
		m.putArgs(args)
		ret := sym.Type.Fn.Ret
		if ret.IsVoid() {
			return Value{T: types.VoidType}
		}
		return m.convert(v, ret, n.Pos())
	}
	if sym.FuncIdx < 0 || sym.FuncIdx >= len(m.prog.Funcs) {
		m.failf(n.Pos(), "function %q has no body", sym.Name)
	}
	fd := m.prog.Funcs[sym.FuncIdx]
	v := m.callFunction(fd, args, n.Pos())
	m.putArgs(args)
	return v
}

// getArgs takes an argument slice from the freelist (or allocates one).
// putArgs returns it after the call completes; a panic unwind (crash,
// cancellation, TxTerm abort) simply drops the slice, which is safe — it
// is never reused while still referenced.
func (m *Machine) getArgs(n int) []Value {
	if k := len(m.argFree); k > 0 {
		s := m.argFree[k-1]
		if cap(s) >= n {
			m.argFree = m.argFree[:k-1]
			return s[:n]
		}
	}
	return make([]Value, n, n+4)
}

func (m *Machine) putArgs(s []Value) {
	if cap(s) == 0 {
		return
	}
	for i := range s {
		s[i] = Value{} // drop unit/byte references held by stale args
	}
	m.argFree = append(m.argFree, s[:0])
}
