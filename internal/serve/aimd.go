package serve

import (
	"fmt"
	"sort"
	"sync"
	"time"
)

// AIMDConfig configures the router's adaptive concurrency limit: an
// additive-increase / multiplicative-decrease controller (the TCP
// congestion-avoidance shape) over the router-wide number of in-flight
// requests, driven by the observed p95 latency versus a target.
//
// Every Window completed requests the controller compares the window's p95
// against TargetP95: above target it multiplies the limit by Backoff
// (shrinking concurrency until queues drain and latency recovers), at or
// below target it adds one (probing for capacity). Submissions arriving
// while the limit is saturated are rejected with ErrOverLimit — upstream
// backpressure, cheaper than queuing work the cluster cannot absorb.
type AIMDConfig struct {
	// TargetP95 is the latency goal; the zero value disables the adaptive
	// limit entirely.
	TargetP95 time.Duration
	// Min and Max bound the limit. Defaults: Min 1, Max 16× the router's
	// total worker count.
	Min, Max int
	// Window is the number of completed requests per adjustment decision;
	// default 32.
	Window int
	// Backoff is the multiplicative-decrease factor in (0,1); default 0.75.
	Backoff float64
}

func (c AIMDConfig) enabled() bool { return c != (AIMDConfig{}) }

// withDefaults fills unset fields; totalWorkers sizes the default Max and
// the initial limit.
func (c AIMDConfig) withDefaults(totalWorkers int) AIMDConfig {
	if c.Min == 0 {
		c.Min = 1
	}
	if c.Max == 0 {
		c.Max = 16 * totalWorkers
	}
	if c.Window == 0 {
		c.Window = 32
	}
	if c.Backoff == 0 {
		c.Backoff = 0.75
	}
	return c
}

func (c AIMDConfig) validate() error {
	if !c.enabled() {
		return nil
	}
	if c.TargetP95 <= 0 {
		return fmt.Errorf("serve: AIMD p95 target %v: must be positive", c.TargetP95)
	}
	if c.Min < 0 || c.Max < 0 {
		return fmt.Errorf("serve: AIMD limit bounds [%d, %d]: must not be negative", c.Min, c.Max)
	}
	if c.Min > 0 && c.Max > 0 && c.Min > c.Max {
		return fmt.Errorf("serve: AIMD minimum limit %d exceeds maximum %d", c.Min, c.Max)
	}
	if c.Window < 0 {
		return fmt.Errorf("serve: AIMD window %d: must not be negative (zero selects the default of 32)", c.Window)
	}
	if c.Backoff < 0 || c.Backoff >= 1 {
		return fmt.Errorf("serve: AIMD backoff factor %v: must be in (0, 1), or zero to select the default of 0.75", c.Backoff)
	}
	return nil
}

// aimdLimiter is the runtime state behind AIMDConfig. A plain mutex is
// fine here: the critical sections are a few comparisons, and the limiter
// is consulted once per request, not per memory access.
type aimdLimiter struct {
	cfg AIMDConfig

	mu       sync.Mutex
	limit    float64 // current concurrency limit (fractional between windows)
	inflight int
	window   []time.Duration // latencies since the last adjustment
}

func newAIMDLimiter(cfg AIMDConfig, totalWorkers int) *aimdLimiter {
	cfg = cfg.withDefaults(totalWorkers)
	// Start at 2× the worker count: enough headroom to keep every worker
	// busy with a queued successor, low enough that a latency overshoot is
	// corrected within a few windows.
	start := 2 * totalWorkers
	if start < cfg.Min {
		start = cfg.Min
	}
	if start > cfg.Max {
		start = cfg.Max
	}
	return &aimdLimiter{
		cfg:    cfg,
		limit:  float64(start),
		window: make([]time.Duration, 0, cfg.Window),
	}
}

// acquire claims an in-flight slot, failing when the adaptive limit is
// saturated.
func (l *aimdLimiter) acquire() bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.inflight >= int(l.limit) {
		return false
	}
	l.inflight++
	return true
}

// release returns a slot and, for requests that actually executed, feeds
// the observed latency into the adjustment window, moving the limit when
// the window fills.
func (l *aimdLimiter) release(lat time.Duration, executed bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.inflight--
	if !executed {
		return
	}
	l.window = append(l.window, lat)
	if len(l.window) < l.cfg.Window {
		return
	}
	sorted := append([]time.Duration(nil), l.window...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	p95 := sorted[(len(sorted)*95+99)/100-1]
	if p95 > l.cfg.TargetP95 {
		l.limit *= l.cfg.Backoff
		if l.limit < float64(l.cfg.Min) {
			l.limit = float64(l.cfg.Min)
		}
	} else {
		l.limit++
		if l.limit > float64(l.cfg.Max) {
			l.limit = float64(l.cfg.Max)
		}
	}
	l.window = l.window[:0]
}

// Limit reports the current integer limit (for stats).
func (l *aimdLimiter) Limit() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return int(l.limit)
}
