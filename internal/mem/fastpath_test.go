package mem

import (
	"math/rand"
	"testing"
)

// refFindUnit is the obviously-correct reference lookup: a linear scan of
// every unit table. FindUnit (region-gated binary searches) and
// FindUnitCached (one-entry caches on top) must agree with it exactly —
// including returning dead heap units and excluding popped stack units,
// which are removed from the table.
func refFindUnit(as *AddressSpace, addr uint64) *Unit {
	for _, tbl := range [][]*Unit{as.literals, as.globals, as.heap, as.stack} {
		for _, u := range tbl {
			if u.Contains(addr) {
				return u
			}
		}
	}
	return nil
}

// TestFindUnitCacheConsistency drives a randomized sequence of every
// operation that mutates the unit-at-address mapping — malloc, free,
// literal interning, global allocation, frame push, frame pop, and
// multi-frame unwind — while a set of LookupCaches persists across all of
// them, exactly as the interpreter's per-machine and per-site caches do.
// After every mutation it cross-checks FindUnit and FindUnitCached against
// the linear-scan reference on a batch of probe addresses biased toward
// unit boundaries (Base-1, Base, interior, End). Any stale cache entry
// surviving a free, pop, or unwind shows up as a pointer-identity mismatch.
//
// Run under -race this also guards the cache fast path against hidden
// shared state (the caches and tables must be confined to one goroutine by
// construction, not by luck).
func TestFindUnitCacheConsistency(t *testing.T) {
	rng := rand.New(rand.NewSource(0xf0cc))
	as := New()

	// Persistent caches, reused round-robin across all probes so entries
	// routinely survive many mutations — the scenario the stamp-based
	// invalidation exists for.
	caches := make([]LookupCache, 8)

	type pushed struct {
		f      *Frame
		saveSP uint64 // SP before the push: UnwindTo target discarding it
	}
	var frames []pushed
	var liveHeap []uint64 // base addresses of live heap blocks

	// probeAddrs accumulates interesting addresses: boundaries of every
	// unit ever created (live, freed, or popped) plus fixed unmapped spots.
	probeAddrs := []uint64{0, 0x100, LiteralBase - 1, GlobalBase - 1,
		HeapBase - 1, heapLimit, StackTop, StackTop - 1}
	noteUnit := func(u *Unit) {
		probeAddrs = append(probeAddrs,
			u.Base-1, u.Base, u.Base+u.Size/2, u.End()-1, u.End())
	}

	check := func(step int) {
		for i := 0; i < 16; i++ {
			addr := probeAddrs[rng.Intn(len(probeAddrs))]
			want := refFindUnit(as, addr)
			if got := as.FindUnit(addr); got != want {
				t.Fatalf("step %d: FindUnit(0x%x) = %v, reference = %v",
					step, addr, got, want)
			}
			c := &caches[i%len(caches)]
			if got := as.FindUnitCached(addr, c); got != want {
				t.Fatalf("step %d: FindUnitCached(0x%x) = %v, reference = %v (cache %+v, stackGen %d)",
					step, addr, got, want, *c, as.stackGen)
			}
		}
	}

	lit := 0
	for step := 0; step < 4000; step++ {
		switch op := rng.Intn(10); {
		case op < 3: // malloc
			u, fault := as.Malloc(uint64(1 + rng.Intn(64)))
			if fault != nil {
				t.Fatalf("step %d: malloc: %v", step, fault)
			}
			liveHeap = append(liveHeap, u.Base)
			noteUnit(u)
		case op < 5: // free a random live block
			if len(liveHeap) == 0 {
				continue
			}
			i := rng.Intn(len(liveHeap))
			if fault := as.Free(liveHeap[i]); fault != nil {
				t.Fatalf("step %d: free: %v", step, fault)
			}
			liveHeap = append(liveHeap[:i], liveHeap[i+1:]...)
		case op < 8: // push a frame with a few locals
			nloc := rng.Intn(4)
			locals := make([]LocalSpec, nloc)
			for l := range locals {
				locals[l] = LocalSpec{Name: "v", Off: uint64(l) * 16,
					Size: uint64(1 + rng.Intn(16))}
			}
			saveSP := as.SP()
			f, fault := as.PushFrame("fn", uint64(16*nloc+8), locals)
			if fault != nil {
				t.Fatalf("step %d: push: %v", step, fault)
			}
			frames = append(frames, pushed{f: f, saveSP: saveSP})
			noteUnit(f.guard)
			for _, u := range f.locals {
				noteUnit(u)
			}
		case op < 9: // pop the top frame
			if len(frames) == 0 {
				continue
			}
			p := frames[len(frames)-1]
			frames = frames[:len(frames)-1]
			if fault := as.PopFrame(p.f); fault != nil {
				t.Fatalf("step %d: pop: %v", step, fault)
			}
		default: // unwind several frames, or intern a literal/global
			if len(frames) > 1 && rng.Intn(2) == 0 {
				k := rng.Intn(len(frames))
				as.UnwindTo(frames[k].saveSP)
				frames = frames[:k]
			} else if rng.Intn(2) == 0 {
				lit++
				noteUnit(as.InternLiteral(string(rune('a'+lit%26)) + "\x00"))
			} else {
				noteUnit(as.AllocGlobal("g", uint64(1+rng.Intn(32))))
			}
		}
		check(step)
	}
}

// TestFindUnitCachedAgainstUncached is the pure equivalence property on a
// fixed populated address space: for any address, FindUnitCached through an
// arbitrarily reused cache returns the identical unit pointer as FindUnit.
func TestFindUnitCachedAgainstUncached(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	as := New()
	var addrs []uint64
	for i := 0; i < 64; i++ {
		u, fault := as.Malloc(uint64(1 + rng.Intn(128)))
		if fault != nil {
			t.Fatal(fault)
		}
		addrs = append(addrs, u.Base, u.Base-1, u.End())
	}
	for i := 0; i < 16; i++ {
		f, fault := as.PushFrame("fn", 64, []LocalSpec{{Name: "x", Off: 0, Size: 48}})
		if fault != nil {
			t.Fatal(fault)
		}
		addrs = append(addrs, f.Base, f.Base+17, f.guard.Base)
	}
	var c LookupCache
	for i := 0; i < 100000; i++ {
		addr := addrs[rng.Intn(len(addrs))] + uint64(rng.Intn(8))
		want := as.FindUnit(addr)
		if got := as.FindUnitCached(addr, &c); got != want {
			t.Fatalf("FindUnitCached(0x%x) = %v, FindUnit = %v", addr, got, want)
		}
	}
}
