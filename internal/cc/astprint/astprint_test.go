package astprint_test

import (
	"strings"
	"testing"

	"focc/internal/cc/astprint"
	"focc/internal/cc/parser"
	"focc/internal/cc/sema"
	"focc/internal/libc"
)

const sample = `
struct pt { int x; int y; };
int g = 5;
char *msg = "hi";
int dist(struct pt *p) {
	int d;
	d = p->x * p->x + p->y * p->y;
	return d;
}
int main(void) {
	struct pt q;
	int arr[3] = { 1, 2 };
	int i;
	q.x = 3; q.y = 4;
	for (i = 0; i < 3; i++)
		arr[i] += i;
	switch (g) {
	case 5: break;
	default: g = (int) 0;
	}
	while (g > 0) g--;
	do { g++; } while (0);
	if (g) goto done;
done:
	return dist(&q) + arr[0] + (g ? 1 : 2) + sizeof(int);
}
`

func dump(t *testing.T) string {
	t.Helper()
	f, errs := parser.ParseString("s.c", sample)
	if len(errs) > 0 {
		t.Fatalf("parse: %v", errs[0])
	}
	if _, errs := sema.Analyze(f, libc.Prototypes()); len(errs) > 0 {
		t.Fatalf("analyze: %v", errs[0])
	}
	var sb strings.Builder
	astprint.File(&sb, f)
	return sb.String()
}

func TestDumpContainsEveryConstruct(t *testing.T) {
	out := dump(t)
	for _, want := range []string{
		"File s.c",
		"VarDecl g : int",
		"VarDecl msg : char*",
		`String "hi"`,
		"FuncDecl dist",
		"frame",
		"local d : int",
		"Member ->x (offset 0) : int",
		"Binary + : int",
		"Assign = : int",
		"Return",
		"FuncDecl main",
		"InitList (2 elems)",
		"For",
		"Postfix ++",
		"Switch",
		"Case 5:",
		"Default:",
		"While",
		"DoWhile",
		"Goto done",
		"Label done:",
		"Cast -> int",
		"Cond ?: : int",
		"Call dist",
		"Unary & : struct pt*",
		"Index : int",
		"Ident g : int [global]",
		"[param @0]",
		"Break",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("dump missing %q\n--- dump ---\n%s", want, out)
		}
	}
}

func TestDumpSingleNode(t *testing.T) {
	f, errs := parser.ParseString("s.c", "int x = 1 + 2;")
	if len(errs) > 0 {
		t.Fatal(errs[0])
	}
	var sb strings.Builder
	astprint.Node(&sb, f.Decls[0])
	if !strings.Contains(sb.String(), "VarDecl x : int") {
		t.Errorf("node dump = %q", sb.String())
	}
}

func TestDumpBuiltinCallAnnotated(t *testing.T) {
	f, errs := parser.ParseString("s.c", `
int main(void) { return (int) strlen("abc"); }`)
	if len(errs) > 0 {
		t.Fatal(errs[0])
	}
	if _, errs := sema.Analyze(f, libc.Prototypes()); len(errs) > 0 {
		t.Fatal(errs[0])
	}
	var sb strings.Builder
	astprint.File(&sb, f)
	if !strings.Contains(sb.String(), "Call strlen : unsigned long [builtin]") {
		t.Errorf("dump = %q", sb.String())
	}
}
