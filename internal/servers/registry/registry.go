// Package registry is the name-keyed catalog of server reproductions: one
// place that knows every servers.Server implementation and how to build a
// fresh one. The public fo/srv API (srv.Names / srv.New), the fobench
// experiment driver, and the fault-injection campaign all select servers
// through it, so adding a server model means adding exactly one table entry
// here instead of updating parallel switch statements.
//
// It is a separate package from internal/servers because the server
// implementations import servers for the shared request/response model; a
// table of their constructors inside package servers would be an import
// cycle.
package registry

import (
	"fmt"
	"sort"
	"strings"

	"focc/fo"
	"focc/internal/servers"
	"focc/internal/servers/apache"
	"focc/internal/servers/mc"
	"focc/internal/servers/mutt"
	"focc/internal/servers/pine"
	"focc/internal/servers/sendmail"
)

// entry is one catalog row: the canonical name, the factory, and the
// package-level compiled-program accessor. A factory per call matters
// because some servers keep host-side state on the Server value (Midnight
// Commander's virtual filesystem, Mutt's folder set); callers that need
// isolated runs must be able to get a fresh value. The program accessor
// serves tools that analyze the server's C source without instantiating it
// (the per-site strategy search classifies its load sites).
type entry struct {
	name    string
	make    func() servers.Server
	program func() (*fo.Program, error)
}

// catalog lists the five server reproductions from the paper's evaluation
// (§4.2–§4.6), in paper order. Paper order is the report order everywhere
// (figures, resilience matrix, campaign), so the table is a slice, not a
// map.
var catalog = []entry{
	{"pine", func() servers.Server { return pine.NewServer() }, pine.Program},
	{"apache", func() servers.Server { return apache.NewServer() }, apache.Program},
	{"sendmail", func() servers.Server { return sendmail.NewServer() }, sendmail.Program},
	{"mc", func() servers.Server { return mc.NewServer() }, mc.Program},
	{"mutt", func() servers.Server { return mutt.NewServer() }, mutt.Program},
}

// Names returns the canonical server names in paper order. The slice is a
// fresh copy; callers may reorder it.
func Names() []string {
	names := make([]string, len(catalog))
	for i, e := range catalog {
		names[i] = e.name
	}
	return names
}

// New builds a fresh Server by name. Unknown names report the valid set.
func New(name string) (servers.Server, error) {
	mk, err := Factory(name)
	if err != nil {
		return nil, err
	}
	return mk(), nil
}

// Factory returns the constructor registered under name, for callers that
// need several isolated instances of the same server model.
func Factory(name string) (func() servers.Server, error) {
	for _, e := range catalog {
		if e.name == name {
			return e.make, nil
		}
	}
	return nil, fmt.Errorf("servers: unknown server %q (have %s)", name, strings.Join(Names(), ", "))
}

// Program returns the compiled fo.Program of the server's C reproduction
// (each server package compiles its source once and shares the Program
// across instances). Static-analysis tools — the per-site manufactured-value
// strategy search classifies load sites — reach the server's AST this way
// without building an instance.
func Program(name string) (*fo.Program, error) {
	for _, e := range catalog {
		if e.name == name {
			return e.program()
		}
	}
	return nil, fmt.Errorf("servers: unknown server %q (have %s)", name, strings.Join(Names(), ", "))
}

// All returns one fresh instance of every registered server, in paper
// order.
func All() []servers.Server {
	all := make([]servers.Server, len(catalog))
	for i, e := range catalog {
		all[i] = e.make()
	}
	return all
}

// Sorted returns the registered names in lexical order (for deterministic
// user-facing listings that are not tied to paper order).
func Sorted() []string {
	names := Names()
	sort.Strings(names)
	return names
}
