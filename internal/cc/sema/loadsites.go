package sema

import (
	"focc/internal/cc/ast"
	"focc/internal/cc/token"
)

// assignLoadSites numbers every potential checked-load expression in the
// program — Index, Member, and Unary-star nodes — with a dense, canonical
// site id. The walk is a fixed in-order traversal over declarations in
// source order, so the numbering is a pure function of the source text and
// therefore identical no matter which execution engine later runs the
// program: the tree-walk evaluator reads the id off the AST node, the
// closure compiler bakes it into its lowered lvalues, and the ahead-of-time
// Go generator emits it as a literal. The ids key the context-aware
// manufactured-value table (internal/strategy); they are distinct from the
// per-engine provenance-recovery site ids (compiler.siteFor / gen.sidFor),
// which are allocation-order cache indices that never need to agree across
// engines.
//
// Every candidate node gets an id whether or not it ever performs a checked
// load (trusted frame accesses are lowered to raw loads and simply never
// consult the table), which keeps the assignment independent of lowering
// decisions.
func assignLoadSites(prog *Program) {
	w := &siteWalker{}
	for _, d := range prog.File.Decls {
		switch d := d.(type) {
		case *ast.VarDecl:
			w.expr(d.Init)
		case *ast.FuncDecl:
			if d.Body != nil {
				w.stmt(d.Body)
			}
		}
	}
	prog.LoadSites = int(w.next)
}

type siteWalker struct {
	next int32
}

func (w *siteWalker) stmt(s ast.Stmt) {
	switch s := s.(type) {
	case nil:
	case *ast.ExprStmt:
		w.expr(s.X)
	case *ast.Block:
		for _, st := range s.Stmts {
			w.stmt(st)
		}
	case *ast.If:
		w.expr(s.Cond)
		w.stmt(s.Then)
		w.stmt(s.Else)
	case *ast.While:
		w.expr(s.Cond)
		w.stmt(s.Body)
	case *ast.DoWhile:
		w.stmt(s.Body)
		w.expr(s.Cond)
	case *ast.For:
		w.stmt(s.Init)
		w.expr(s.Cond)
		w.expr(s.Post)
		w.stmt(s.Body)
	case *ast.Switch:
		w.expr(s.Cond)
		w.stmt(s.Body)
	case *ast.Return:
		w.expr(s.X)
	case *ast.Labeled:
		w.stmt(s.Stmt)
	case *ast.DeclStmt:
		for _, d := range s.Decls {
			w.expr(d.Init)
		}
	case *ast.CaseLabel:
		w.expr(s.Val)
	}
}

func (w *siteWalker) expr(e ast.Expr) {
	switch e := e.(type) {
	case nil:
	case *ast.Unary:
		w.expr(e.X)
		if e.Op == token.Star {
			e.LoadSite = w.next
			w.next++
		}
	case *ast.Index:
		w.expr(e.X)
		w.expr(e.Idx)
		e.LoadSite = w.next
		w.next++
	case *ast.Member:
		w.expr(e.X)
		e.LoadSite = w.next
		w.next++
	case *ast.Postfix:
		w.expr(e.X)
	case *ast.Binary:
		w.expr(e.X)
		w.expr(e.Y)
	case *ast.Assign:
		w.expr(e.LHS)
		w.expr(e.RHS)
	case *ast.Cond:
		w.expr(e.C)
		w.expr(e.Then)
		w.expr(e.Else)
	case *ast.Call:
		for _, a := range e.Args {
			w.expr(a)
		}
	case *ast.SizeofExpr:
		w.expr(e.X)
	case *ast.Cast:
		w.expr(e.X)
	case *ast.Comma:
		w.expr(e.X)
		w.expr(e.Y)
	case *ast.InitList:
		for _, el := range e.Elems {
			w.expr(el)
		}
	}
}

// LoadSiteOf returns the canonical load-site id of e when e is a node kind
// that can be a checked-load site, and -1 otherwise. Engines use it to
// prime the context-aware value strategy; -1 routes manufacture to the
// fallback strategy.
func LoadSiteOf(e ast.Node) int32 {
	switch e := e.(type) {
	case *ast.Index:
		return e.LoadSite
	case *ast.Member:
		return e.LoadSite
	case *ast.Unary:
		if e.Op == token.Star {
			return e.LoadSite
		}
	}
	return -1
}
