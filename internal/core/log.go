package core

import (
	"fmt"
	"io"
	"sync"

	"focc/internal/cc/token"
)

// Event records one attempt by the program to commit a memory error
// (paper §3: "our compiler can optionally augment the generated code to
// produce a log containing information about the program's attempts to
// commit memory errors").
type Event struct {
	Pos   token.Pos
	Write bool
	Addr  uint64
	Size  int
	Unit  string // provenance data unit name, if any
	// Victim names the unit the access would actually have touched
	// (from the object-table lookup), if any.
	Victim string
	// Manufactured is the value supplied for an invalid read.
	Manufactured int64
	// Strategy names the manufactured-value strategy that produced
	// Manufactured (ModeFOContext only; empty for the global sequence).
	Strategy string
	// Boundless marks accesses served by the boundless side store.
	Boundless bool
	// Redirected marks accesses wrapped back into the unit.
	Redirected bool
	// Denied marks accesses a terminating policy rejected (BoundsCheck's
	// fatal rejection, TxTerm's function abort): no value was manufactured
	// and no write was discarded — execution did not continue past it.
	Denied bool
}

// manufactures reports whether the event actually supplied a manufactured
// value (an invalid read continued through by generating data, as opposed to
// one served from the boundless side store, redirected into the unit, or
// denied outright).
func (e Event) manufactures() bool {
	return !e.Write && !e.Denied && !e.Boundless && !e.Redirected
}

func (e Event) String() string {
	op := "invalid read"
	switch {
	case e.Denied && e.Write:
		op = "invalid write (terminated)"
	case e.Denied:
		op = "invalid read (terminated)"
	case e.Write:
		op = "invalid write (discarded)"
	}
	u := e.Unit
	if u == "" {
		u = "<no unit>"
	}
	s := fmt.Sprintf("%s: %s of %d bytes at 0x%x (unit %s)", e.Pos, op, e.Size, e.Addr, u)
	if e.Victim != "" && e.Victim != e.Unit {
		s += fmt.Sprintf(", would have touched %s", e.Victim)
	}
	if e.manufactures() {
		s += fmt.Sprintf(", manufactured value %d", e.Manufactured)
		if e.Strategy != "" {
			s += fmt.Sprintf(" [%s]", e.Strategy)
		}
	}
	if e.Boundless {
		s += " [boundless]"
	}
	if e.Redirected {
		s += " [redirected]"
	}
	return s
}

// snapshotCardinality bounds the Manufactured and Victims maps of a
// Snapshot: once a map holds this many distinct keys, events with new keys
// still count toward the exact counters but are dropped from the histogram.
// The paper's manufactured-value sequence is a handful of small integers and
// victim names are static data-unit names, so the cap is never reached in
// practice; it exists so a pathological workload cannot grow the log without
// bound.
const snapshotCardinality = 256

// Snapshot is a point-in-time copy of an EventLog's aggregate counters. It
// is a plain value: safe to retain, merge, and read without synchronization.
type Snapshot struct {
	// InvalidReads counts invalid reads continued through.
	InvalidReads uint64
	// InvalidWrites counts invalid writes discarded (or stored
	// boundlessly / redirected).
	InvalidWrites uint64
	// Denied counts accesses rejected fatally by a terminating policy
	// (BoundsCheck's memory-error exit, TxTerm's function abort).
	Denied uint64
	// Manufactured histograms the values supplied for invalid reads
	// (value -> occurrences). Nil when no value was ever manufactured.
	Manufactured map[int64]uint64
	// Victims counts events per would-be victim unit (the unit the access
	// would actually have touched). Nil when no victim was ever recorded.
	Victims map[string]uint64
	// Strategies histograms manufactured values by the strategy that
	// produced them (strategy name -> occurrences; ModeFOContext only).
	// Nil when no strategy-attributed value was ever manufactured.
	Strategies map[string]uint64
}

// Total returns the total number of memory-error events in the snapshot.
func (s Snapshot) Total() uint64 { return s.InvalidReads + s.InvalidWrites + s.Denied }

// Merge adds o's counts into s (histograms included).
func (s *Snapshot) Merge(o Snapshot) {
	s.InvalidReads += o.InvalidReads
	s.InvalidWrites += o.InvalidWrites
	s.Denied += o.Denied
	for v, n := range o.Manufactured {
		if s.Manufactured == nil {
			s.Manufactured = make(map[int64]uint64, len(o.Manufactured))
		}
		s.Manufactured[v] += n
	}
	for u, n := range o.Victims {
		if s.Victims == nil {
			s.Victims = make(map[string]uint64, len(o.Victims))
		}
		s.Victims[u] += n
	}
	for name, n := range o.Strategies {
		if s.Strategies == nil {
			s.Strategies = make(map[string]uint64, len(o.Strategies))
		}
		s.Strategies[name] += n
	}
}

// Clone returns a deep copy (the histogram maps are not shared).
func (s Snapshot) Clone() Snapshot {
	out := s
	out.Manufactured, out.Victims, out.Strategies = nil, nil, nil
	out.Merge(Snapshot{Manufactured: s.Manufactured, Victims: s.Victims, Strategies: s.Strategies})
	return out
}

// Cursor marks a position in an EventLog's counters; see EventLog.Cursor.
type Cursor struct {
	reads, writes, denied uint64
}

// Delta is the difference between two log positions: the events recorded
// between taking a Cursor and calling Since — the per-request attribution
// unit (servers.Response.MemErrors).
type Delta struct {
	InvalidReads  uint64
	InvalidWrites uint64
	Denied        uint64
}

// Total returns the total number of events in the delta.
func (d Delta) Total() uint64 { return d.InvalidReads + d.InvalidWrites + d.Denied }

func (d Delta) String() string {
	return fmt.Sprintf("%d invalid reads, %d invalid writes, %d denied",
		d.InvalidReads, d.InvalidWrites, d.Denied)
}

// EventLog accumulates memory-error events. It keeps exact counters, small
// aggregate histograms, and a bounded window of the most recent events.
//
// Concurrency: all methods are safe for concurrent use from any goroutine —
// a mutex guards the counters, the histograms, the ring, and writes to
// Stream (which are serialized, never interleaved). This is what makes a
// live scrape (stats endpoint, supervisor, fobench) legal while the owning
// worker is mid-request; the old contract that only the instance's owner
// could read the log is gone.
type EventLog struct {
	mu     sync.Mutex
	limit  int
	events []Event
	start  int // ring start when full

	reads  uint64
	writes uint64
	denied uint64 // bounds-check terminations

	manufactured map[int64]uint64
	victims      map[string]uint64
	strategies   map[string]uint64

	// Stream is an optional live event stream. Set it before the log is
	// shared between goroutines (writes to it are serialized under the
	// log's mutex, but assigning the field itself is not synchronized).
	Stream io.Writer
}

// DefaultLogLimit bounds the retained event window.
const DefaultLogLimit = 1024

// NewEventLog returns a log retaining up to limit recent events
// (DefaultLogLimit if limit <= 0).
func NewEventLog(limit int) *EventLog {
	if limit <= 0 {
		limit = DefaultLogLimit
	}
	return &EventLog{limit: limit}
}

func (l *EventLog) add(e Event) {
	if l == nil {
		return
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if e.Write {
		l.writes++
	} else {
		l.reads++
	}
	l.push(e)
}

// addDenied records an access a terminating policy rejected fatally.
func (l *EventLog) addDenied(e Event) {
	if l == nil {
		return
	}
	e.Denied = true
	l.mu.Lock()
	defer l.mu.Unlock()
	l.denied++
	l.push(e)
}

// push appends e to the ring and the aggregates; callers hold l.mu.
func (l *EventLog) push(e Event) {
	if e.manufactures() {
		if l.manufactured == nil {
			l.manufactured = make(map[int64]uint64)
		}
		if _, ok := l.manufactured[e.Manufactured]; ok || len(l.manufactured) < snapshotCardinality {
			l.manufactured[e.Manufactured]++
		}
	}
	if e.Victim != "" {
		if l.victims == nil {
			l.victims = make(map[string]uint64)
		}
		if _, ok := l.victims[e.Victim]; ok || len(l.victims) < snapshotCardinality {
			l.victims[e.Victim]++
		}
	}
	if e.Strategy != "" && e.manufactures() {
		if l.strategies == nil {
			l.strategies = make(map[string]uint64)
		}
		if _, ok := l.strategies[e.Strategy]; ok || len(l.strategies) < snapshotCardinality {
			l.strategies[e.Strategy]++
		}
	}
	if l.Stream != nil {
		fmt.Fprintln(l.Stream, e.String())
	}
	if len(l.events) < l.limit {
		l.events = append(l.events, e)
		return
	}
	l.events[l.start] = e
	l.start = (l.start + 1) % l.limit
}

// InvalidReads returns the number of invalid reads continued through.
func (l *EventLog) InvalidReads() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.reads
}

// InvalidWrites returns the number of invalid writes discarded (or stored
// boundlessly / redirected).
func (l *EventLog) InvalidWrites() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.writes
}

// Denied returns the number of accesses rejected fatally by BoundsCheck.
func (l *EventLog) Denied() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.denied
}

// Total returns the total number of memory-error events.
func (l *EventLog) Total() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.reads + l.writes + l.denied
}

// Snapshot returns a point-in-time copy of the aggregate counters and
// histograms. The result shares no state with the log.
func (l *EventLog) Snapshot() Snapshot {
	l.mu.Lock()
	defer l.mu.Unlock()
	s := Snapshot{
		InvalidReads:  l.reads,
		InvalidWrites: l.writes,
		Denied:        l.denied,
		Manufactured:  l.manufactured,
		Victims:       l.victims,
		Strategies:    l.strategies,
	}
	return s.Clone()
}

// Cursor returns a mark of the log's current position. Pair it with Since
// to attribute the events of one request: take a cursor before handling,
// call Since after.
func (l *EventLog) Cursor() Cursor {
	l.mu.Lock()
	defer l.mu.Unlock()
	return Cursor{reads: l.reads, writes: l.writes, denied: l.denied}
}

// Since returns the events recorded after c was taken. Counters only move
// forward, so as long as the log was not Reset in between the delta is
// exact even if other goroutines observed the log concurrently.
func (l *EventLog) Since(c Cursor) Delta {
	l.mu.Lock()
	defer l.mu.Unlock()
	return Delta{
		InvalidReads:  l.reads - c.reads,
		InvalidWrites: l.writes - c.writes,
		Denied:        l.denied - c.denied,
	}
}

// Recent returns the retained window of events, oldest first.
func (l *EventLog) Recent() []Event {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.start == 0 {
		out := make([]Event, len(l.events))
		copy(out, l.events)
		return out
	}
	out := make([]Event, 0, len(l.events))
	out = append(out, l.events[l.start:]...)
	out = append(out, l.events[:l.start]...)
	return out
}

// Reset clears counters, histograms, and the retained window.
func (l *EventLog) Reset() {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.events = l.events[:0]
	l.start = 0
	l.reads, l.writes, l.denied = 0, 0, 0
	l.manufactured, l.victims, l.strategies = nil, nil, nil
}

// Summary renders a one-line summary of the log.
func (l *EventLog) Summary() string {
	l.mu.Lock()
	defer l.mu.Unlock()
	return fmt.Sprintf("memory errors: %d invalid reads, %d invalid writes, %d denied",
		l.reads, l.writes, l.denied)
}

// AddExternal records an event originating outside the accessor (e.g. the
// allocator discarding an invalid free under the failure-oblivious policy).
func (l *EventLog) AddExternal(e Event) { l.add(e) }
