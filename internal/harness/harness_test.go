package harness

import (
	"strings"
	"testing"

	"focc/fo"
	"focc/internal/servers"
	"focc/internal/servers/apache"
	"focc/internal/servers/mc"
	"focc/internal/servers/mutt"
	"focc/internal/servers/pine"
	"focc/internal/servers/sendmail"
)

// AllServers returns the paper's five servers.
func allServers() []servers.Server {
	return []servers.Server{
		pine.NewServer(),
		apache.NewServer(),
		sendmail.NewServer(),
		mc.NewServer(),
		mutt.NewServer(),
	}
}

func TestResilienceMatrixShape(t *testing.T) {
	rows, err := ResilienceMatrix(allServers(), Modes)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 15 {
		t.Fatalf("got %d rows, want 15 (5 servers x 3 versions)", len(rows))
	}
	for _, r := range rows {
		switch r.Mode {
		case fo.Standard:
			if !r.AttackOutcome.Crashed() {
				t.Errorf("%s standard: attack outcome %v, want a crash", r.Server, r.AttackOutcome)
			}
		case fo.BoundsCheck:
			if r.AttackOutcome != fo.OutcomeMemErrorTermination {
				t.Errorf("%s bounds: attack outcome %v, want termination", r.Server, r.AttackOutcome)
			}
		case fo.FailureOblivious:
			if r.AttackOutcome != fo.OutcomeOK {
				t.Errorf("%s oblivious: attack outcome %v, want ok", r.Server, r.AttackOutcome)
			}
			if !r.PostAttackOK {
				t.Errorf("%s oblivious: server not serving after attack", r.Server)
			}
			if r.ErrorsLogged == 0 {
				t.Errorf("%s oblivious: no memory errors logged", r.Server)
			}
		}
	}
}

func TestVariantsMatrixSurvives(t *testing.T) {
	// Paper §5.1: "our set of servers works acceptably with both of
	// these variants."
	rows, err := ResilienceMatrix(allServers(), VariantModes)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r.AttackOutcome.Crashed() {
			t.Errorf("%s %v: attack crashed the server (%v)", r.Server, r.Mode, r.AttackOutcome)
		}
		if !r.PostAttackOK {
			t.Errorf("%s %v: not serving after attack", r.Server, r.Mode)
		}
	}
}

func TestChildPoolRestartsCrashedChildren(t *testing.T) {
	srv := apache.NewServer()
	pool, err := NewChildPool(srv, fo.BoundsCheck, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()
	for i := 0; i < 4; i++ {
		if _, err := pool.Handle(srv.AttackRequest()); err != nil {
			t.Fatal(err)
		}
	}
	resp, err := pool.Handle(srv.LegitRequests()[0])
	if err != nil {
		t.Fatal(err)
	}
	if !resp.OK() {
		t.Errorf("pool stopped serving: %v", resp)
	}
	if pool.Restarts() == 0 {
		t.Error("expected child restarts under attack")
	}
}

func TestAttackThroughputOrdering(t *testing.T) {
	if testing.Short() {
		t.Skip("throughput experiment")
	}
	srv := apache.NewServer()
	var rows []ThroughputResult
	for _, mode := range Modes {
		r, err := AttackThroughput(srv, mode, 4, 20, 3)
		if err != nil {
			t.Fatalf("%v: %v", mode, err)
		}
		rows = append(rows, r)
	}
	var std, bc, foR ThroughputResult
	for _, r := range rows {
		switch r.Mode {
		case fo.Standard:
			std = r
		case fo.BoundsCheck:
			bc = r
		case fo.FailureOblivious:
			foR = r
		}
	}
	// The paper's shape: the Failure Oblivious version sustains the
	// highest throughput because it never pays process-restart overhead.
	if foR.Restarts != 0 {
		t.Errorf("oblivious pool restarted %d children, want 0", foR.Restarts)
	}
	if std.Restarts == 0 || bc.Restarts == 0 {
		t.Errorf("standard/bounds pools should restart children (std=%d bc=%d)",
			std.Restarts, bc.Restarts)
	}
	if !(foR.Throughput > bc.Throughput) || !(foR.Throughput > std.Throughput) {
		t.Errorf("throughput ordering wrong: fo=%.1f bounds=%.1f std=%.1f",
			foR.Throughput, bc.Throughput, std.Throughput)
	}
}

func TestSoakFailureObliviousNeverRestarts(t *testing.T) {
	if testing.Short() {
		t.Skip("soak")
	}
	for _, srv := range allServers() {
		res, err := Soak(srv, fo.FailureOblivious, 60, 7)
		if err != nil {
			t.Fatalf("%s: %v", srv.Name(), err)
		}
		if res.Crashes != 0 || res.Restarts != 0 {
			t.Errorf("%s: oblivious soak crashed %d times", srv.Name(), res.Crashes)
		}
		if res.Attacks == 0 {
			t.Errorf("%s: soak ran no attacks", srv.Name())
		}
	}
}

func TestFormatters(t *testing.T) {
	rows := []PerfRow{{Request: "Read", Standard: Sample{MeanMs: 1, StdevPc: 2, N: 20},
		Failure: Sample{MeanMs: 3, StdevPc: 1, N: 20}, Slowdown: 3}}
	out := FormatPerfTable("Figure X", rows)
	if !strings.Contains(out, "Read") || !strings.Contains(out, "3.00") {
		t.Errorf("perf table: %q", out)
	}
	rrows := []ResilienceRow{{Server: "mutt", Mode: fo.Standard,
		AttackOutcome: fo.OutcomeSegfault}}
	if !strings.Contains(FormatResilience(rrows), "mutt") {
		t.Error("resilience table missing server")
	}
	trows := []ThroughputResult{
		{Mode: fo.FailureOblivious, Throughput: 57},
		{Mode: fo.BoundsCheck, Throughput: 10},
	}
	if !strings.Contains(FormatThroughput(trows), "5.7") {
		t.Errorf("throughput table: %q", FormatThroughput(trows))
	}
}

// serverMakers returns fresh-server constructors (for experiments that need
// isolated host-side state per instance).
func serverMakers() []func() servers.Server {
	return []func() servers.Server{
		func() servers.Server { return pine.NewServer() },
		func() servers.Server { return apache.NewServer() },
		func() servers.Server { return sendmail.NewServer() },
		func() servers.Server { return mc.NewServer() },
		func() servers.Server { return mutt.NewServer() },
	}
}

func TestTxTermComparisonSurvivesAttacks(t *testing.T) {
	// Paper §5.2: transactional function termination also lets servers
	// continue acceptably after buffer-overflow attacks — "consistent
	// with our experience" with failure-oblivious computing. All five
	// servers must survive the attack and keep serving under TxTerm.
	rows, err := ResilienceMatrix(allServers(), []fo.Mode{fo.TxTerm})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r.AttackOutcome.Crashed() {
			t.Errorf("%s txterm: attack crashed the server (%v)", r.Server, r.AttackOutcome)
		}
		if !r.PostAttackOK {
			t.Errorf("%s txterm: not serving after attack", r.Server)
		}
	}
}
