package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"focc/fo"
	"focc/internal/harness"
)

// The full "all" run is exercised by CI scripts; tests cover each
// experiment selector with small parameters.

func TestExperimentSelectors(t *testing.T) {
	for _, exp := range []string{"fig3", "fig6", "resilience", "variants", "ablation"} {
		if err := run(exp, 2, 20); err != nil {
			t.Errorf("experiment %q: %v", exp, err)
		}
	}
}

func TestSoakExperiment(t *testing.T) {
	if testing.Short() {
		t.Skip("soak")
	}
	if err := run("soak", 2, 20); err != nil {
		t.Errorf("soak: %v", err)
	}
}

func TestLoadtestExperiment(t *testing.T) {
	if testing.Short() {
		t.Skip("loadtest")
	}
	cfg := harness.LoadtestConfig{
		Clients:         8,
		PoolSize:        2,
		AttacksPerLegit: 1,
		LegitPerClient:  2,
		Deadline:        5 * time.Second,
	}
	if err := runClock("loadtest", 2, 20, harness.SimClock, cfg); err != nil {
		t.Errorf("loadtest: %v", err)
	}
}

// TestEngineSelection pins the -engine axis: the same Pine request runs on
// all three engines (codegen resolves the server's generated code from the
// checked-in internal/gencorpus registration) and must burn the identical
// number of simulated cycles — the engine changes wall-clock dispatch cost
// only, never the cost model. Unknown engine names are rejected up front.
func TestEngineSelection(t *testing.T) {
	defer func(h func(*fo.MachineConfig)) { engineHook = h }(engineHook)
	req := mustServer("pine").LegitRequests()[0]
	var cycles []uint64
	for _, engine := range []string{"treewalk", "compiled", "codegen"} {
		if err := setEngine(engine); err != nil {
			t.Fatalf("setEngine(%q): %v", engine, err)
		}
		inst, err := mustServer("pine").New(fo.FailureOblivious)
		if err != nil {
			t.Fatalf("%s: %v", engine, err)
		}
		if resp := inst.Handle(req); resp.Outcome != fo.OutcomeOK {
			t.Fatalf("%s: %v", engine, resp.Outcome)
		}
		cycles = append(cycles, inst.Cycles())
	}
	if cycles[0] != cycles[1] || cycles[1] != cycles[2] {
		t.Errorf("sim cycles diverge across engines: %v", cycles)
	}
	if err := setEngine("jit"); err == nil {
		t.Error("expected error for unknown engine")
	}
}

// The doc comment must mention every -engine value.
func TestUsageDocMentionsEngines(t *testing.T) {
	src, err := os.ReadFile("main.go")
	if err != nil {
		t.Fatal(err)
	}
	for _, engine := range []string{"treewalk", "compiled", "codegen"} {
		if !strings.Contains(string(src), "//\tfobench -engine "+engine) {
			t.Errorf("doc comment missing -engine %s line", engine)
		}
	}
}

func TestUnknownExperiment(t *testing.T) {
	if err := run("nope", 2, 10); err == nil {
		t.Error("expected error for unknown experiment")
	}
}

// The package doc comment embeds the rendered experiments table; this test
// pins the two together so adding an experiment without updating the usage
// block (or vice versa) fails the build. The "list" experiment prints the
// same rendering, so it is covered by the same assertion.
func TestUsageDocMatchesExperimentTable(t *testing.T) {
	src, err := os.ReadFile("main.go")
	if err != nil {
		t.Fatal(err)
	}
	for _, line := range strings.Split(strings.TrimSuffix(experimentTable(), "\n"), "\n") {
		want := "//\t" + line
		if !strings.Contains(string(src), want) {
			t.Errorf("doc comment missing experiment line %q", want)
		}
	}
}

func TestListExperiment(t *testing.T) {
	if err := dispatch("list", 1, 1, harness.SimClock, harness.LoadtestConfig{}, campaignOpts{}, searchOpts{}, clusterOpts{}); err != nil {
		t.Errorf("list: %v", err)
	}
	table := experimentTable()
	for _, id := range []string{"all", "fig2", "campaign", "list"} {
		if !strings.Contains(table, "-experiment "+id) {
			t.Errorf("experiment table missing %q", id)
		}
	}
}

func TestClusterExperiment(t *testing.T) {
	if testing.Short() {
		t.Skip("cluster")
	}
	out := filepath.Join(t.TempDir(), "cluster.json")
	cl := clusterOpts{seed: 7, duration: 150 * time.Millisecond, clients: 300, out: out}
	if err := dispatch("cluster", 1, 1, harness.SimClock, harness.LoadtestConfig{}, campaignOpts{}, searchOpts{}, cl); err != nil {
		t.Fatalf("cluster: %v", err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatalf("JSON report not written: %v", err)
	}
	// The report must carry the standard matrix plus the scale cell's
	// client accounting and the rebalance cell's handoff counter.
	for _, want := range []string{`"Server": "apache"`, `"Capacity"`, `"Goodput"`,
		`"failure-oblivious"`, `"Clients"`, `"GenSeconds"`, `"Rebalanced"`, `"InFlightPeak"`} {
		if !strings.Contains(string(data), want) {
			t.Errorf("JSON report missing %q", want)
		}
	}
}

// The package doc comment documents the profiling flags; this pins the doc
// lines to the registered flag set so neither can drift alone.
func TestUsageDocMatchesProfilingFlags(t *testing.T) {
	src, err := os.ReadFile("main.go")
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"cpuprofile", "memprofile"} {
		if !strings.Contains(string(src), "//\tfobench -"+name+" ") {
			t.Errorf("doc comment missing a usage line for -%s", name)
		}
	}
}

func TestCampaignExperiment(t *testing.T) {
	if testing.Short() {
		t.Skip("campaign")
	}
	out := filepath.Join(t.TempDir(), "campaign.json")
	co := campaignOpts{seed: 7, faults: 4, out: out, servers: "pine"}
	if err := dispatch("campaign", 1, 1, harness.SimClock, harness.LoadtestConfig{}, co, searchOpts{}, clusterOpts{}); err != nil {
		t.Fatalf("campaign: %v", err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatalf("JSON report not written: %v", err)
	}
	for _, want := range []string{`"Seed": 7`, `"Server": "pine"`, `"failure-oblivious"`, `"rewind"`} {
		if !strings.Contains(string(data), want) {
			t.Errorf("JSON report missing %q", want)
		}
	}
}

// -campaign-modes restricts the matrix and accepts every parseable mode
// name, rewind included; unknown names are rejected up front.
func TestCampaignModesFlag(t *testing.T) {
	if testing.Short() {
		t.Skip("campaign")
	}
	out := filepath.Join(t.TempDir(), "campaign.json")
	co := campaignOpts{seed: 7, faults: 4, out: out, servers: "pine", modes: "failure-oblivious, rewind"}
	if err := dispatch("campaign", 1, 1, harness.SimClock, harness.LoadtestConfig{}, co, searchOpts{}, clusterOpts{}); err != nil {
		t.Fatalf("campaign: %v", err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatalf("JSON report not written: %v", err)
	}
	if !strings.Contains(string(data), `"rewind"`) {
		t.Error("JSON report missing rewind cells")
	}
	if strings.Contains(string(data), `"bounds-check"`) {
		t.Error("JSON report contains a mode excluded by -campaign-modes")
	}

	co.modes = "bogus"
	if err := dispatch("campaign", 1, 1, harness.SimClock, harness.LoadtestConfig{}, co, searchOpts{}, clusterOpts{}); err == nil {
		t.Error("expected error for unknown campaign mode")
	}
}

// TestStrategySearchExperiment runs the per-site strategy search on one
// server with a small fault budget, checks the report shape, pins the
// determinism contract (two same-seed runs produce byte-identical JSON),
// and checks the acceptance floor: the searched assignment's survival never
// falls below the global small-integer baseline.
func TestStrategySearchExperiment(t *testing.T) {
	if testing.Short() {
		t.Skip("strategysearch")
	}
	run := func(out string) []byte {
		t.Helper()
		so := searchOpts{seed: 7, faults: 6, out: out, servers: "pine", budget: 40}
		if err := dispatch("strategysearch", 1, 1, harness.SimClock, harness.LoadtestConfig{}, campaignOpts{}, so, clusterOpts{}); err != nil {
			t.Fatalf("strategysearch: %v", err)
		}
		data, err := os.ReadFile(out)
		if err != nil {
			t.Fatalf("JSON report not written: %v", err)
		}
		return data
	}
	dir := t.TempDir()
	a := run(filepath.Join(dir, "a.json"))
	b := run(filepath.Join(dir, "b.json"))
	if string(a) != string(b) {
		t.Error("two same-seed strategysearch runs produced different JSON")
	}
	for _, want := range []string{`"Seed": 7`, `"Server": "pine"`, `"Baseline"`, `"Best"`, `"BestAssignment"`} {
		if !strings.Contains(string(a), want) {
			t.Errorf("JSON report missing %q", want)
		}
	}
	var rep struct {
		Servers []struct {
			Baseline, Best struct{ SurvivalRate float64 }
		}
	}
	if err := json.Unmarshal(a, &rep); err != nil {
		t.Fatalf("report does not parse: %v", err)
	}
	for _, s := range rep.Servers {
		if s.Best.SurvivalRate < s.Baseline.SurvivalRate {
			t.Errorf("best survival %.3f below smallint baseline %.3f",
				s.Best.SurvivalRate, s.Baseline.SurvivalRate)
		}
	}
}
