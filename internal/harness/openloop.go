package harness

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math/rand"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"focc/fo"
	"focc/internal/serve"
	"focc/internal/servers"
)

// ClusterConfig parameterizes the open-loop cluster experiment: a sharded
// serve.Router driven by Poisson arrivals at a configured offered rate,
// independent of completions — the arrival process does not slow down when
// the cluster does, which is what makes overload visible (a closed-loop
// generator like Loadtest self-throttles and can never offer 2×).
type ClusterConfig struct {
	// Shards is the router's shard count; 0 means 2.
	Shards int
	// PoolSize is each shard's worker count; 0 means 2.
	PoolSize int
	// QueueDepth bounds each shard's admission queue; 0 means 32.
	QueueDepth int
	// Tenants is the number of distinct tenant keys arrivals draw from;
	// 0 means 8.
	Tenants int
	// Quota caps each tenant's in-flight requests (0 = no quotas).
	Quota int
	// SLO is the per-request deadline and the goodput threshold: a request
	// answered OK within SLO counts toward goodput. 0 means 50ms.
	SLO time.Duration
	// TargetP95 enables the router's AIMD concurrency limit at this target
	// (0 = AIMD off).
	TargetP95 time.Duration
	// Rate is the offered arrival rate in requests/second. Required.
	Rate float64
	// Duration is how long arrivals are generated; 0 means 1s.
	Duration time.Duration
	// Chaos is per-shard chaos injection (zero = none).
	Chaos serve.ChaosConfig
	// AttackEvery submits the server's attack request on every n-th
	// arrival of each generator group (0 = legitimate traffic only).
	// Under crashing modes the attacks trip shard breakers, which is how
	// the rebalance-under-chaos cell keeps the ring churning.
	AttackEvery int
	// BreakerAfter and BreakerCooldown override each shard's restart-storm
	// circuit breaker (both zero = the engine defaults), so a cell can make
	// breaker trips — and therefore cross-shard rebalancing — frequent
	// enough to observe within its generation window.
	BreakerAfter    int
	BreakerCooldown time.Duration
	// Seed drives the arrival process and tenant picks; 0 means 1.
	Seed int64
}

func (c *ClusterConfig) defaults() {
	if c.Shards <= 0 {
		c.Shards = 2
	}
	if c.PoolSize <= 0 {
		c.PoolSize = 2
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 32
	}
	if c.Tenants <= 0 {
		c.Tenants = 8
	}
	if c.SLO <= 0 {
		c.SLO = 50 * time.Millisecond
	}
	if c.Duration <= 0 {
		c.Duration = time.Second
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
}

// ClusterResult is one cell of the goodput-under-overload curve.
type ClusterResult struct {
	Mode  string
	Chaos bool
	// Load is the offered-load multiplier this cell was run at (informational).
	Load float64
	// Rate is the configured offered arrival rate (req/s).
	Rate float64
	// Offered counts generated arrivals; Served counts OK responses;
	// SLOGood counts OK responses within the SLO.
	Offered, Served, SLOGood int
	// Clients is the number of simulated clients this cell drove: each
	// open-loop arrival is an independent client interaction (its own
	// goroutine, submitted regardless of how many are still in flight), so
	// Clients == Offered. Named separately because it is the scale knob the
	// 100k-client cell is sized by.
	Clients int
	// InFlightPeak is the highest number of simultaneously outstanding
	// client requests observed.
	InFlightPeak int64
	// GenSeconds is the actual wall-clock time the slowest generator group
	// took to emit its arrivals — the honesty metric for the offered rate:
	// when generation cannot keep up with the configured Rate it exceeds
	// Duration, and Goodput is computed over it, not the configured window.
	GenSeconds float64
	// Goodput is SLO-meeting responses per second of generation time.
	Goodput float64
	// Latency percentiles over served (OK) requests, in ns.
	P50, P95, P99 time.Duration
	// Rejections by cause, plus engine supervision counters.
	Shed, Rejected, OverQuota, OverLimit uint64
	Timeouts, Restarts, Recycles         uint64
	// Rebalanced counts requests rerouted off a breaker-tripped home shard.
	Rebalanced uint64
	// Errors counts submissions that failed for any reason other than the
	// admission-control errors above (should be zero).
	Errors int
}

// ClusterCapacity estimates the fleet's sustainable service rate (OK
// responses per second) with a short closed-loop burst at full concurrency
// — the 1× baseline the overload multipliers scale from.
func ClusterCapacity(srv servers.Server, mode fo.Mode, cfg ClusterConfig) (float64, error) {
	cfg.defaults()
	rt, err := newClusterRouter(srv, mode, cfg, serve.ChaosConfig{})
	if err != nil {
		return 0, err
	}
	defer rt.Close()
	clients := cfg.Shards * cfg.PoolSize * 2
	const warm = 50 * time.Millisecond
	const measure = 300 * time.Millisecond
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			tenant := fmt.Sprintf("tenant-%d", c%cfg.Tenants)
			req := srv.LegitRequests()[0]
			for {
				select {
				case <-stop:
					return
				default:
				}
				rt.Submit(context.Background(), tenant, req)
			}
		}(c)
	}
	time.Sleep(warm)
	before := rt.Stats().Served
	time.Sleep(measure)
	served := rt.Stats().Served - before
	close(stop)
	wg.Wait()
	return float64(served) / measure.Seconds(), nil
}

// genGroup is one generator group's private state: its own PRNG, arrival
// schedule, and completion accounting, so groups share nothing on the hot
// path — the single-core version serialized every completion through one
// mutex and one latency slice, which capped the harness at roughly one
// core's worth of generation no matter how many the runner had.
type genGroup struct {
	offered int

	mu        sync.Mutex // guards the completion accounting below
	latencies []time.Duration
	served    int
	sloGood   int
	failures  int
}

func (g *genGroup) record(lat time.Duration, slo time.Duration, ok bool) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if !ok {
		g.failures++
		return
	}
	g.served++
	g.latencies = append(g.latencies, lat)
	if lat <= slo {
		g.sloGood++
	}
}

// ClusterRun drives the router open loop: Poisson arrivals at cfg.Rate for
// cfg.Duration, every arrival submitted immediately on its own goroutine
// regardless of how many are still in flight. Generation and completion
// accounting are sharded across GOMAXPROCS generator groups — each group
// runs an independent Poisson process at Rate/W (the superposition of
// independent Poisson processes is a Poisson process at the summed rate),
// stamps arrivals from its own PRNG (Seed+group), and accumulates its own
// completions — so offered load scales with cores instead of saturating
// one generation loop.
func ClusterRun(srv servers.Server, mode fo.Mode, cfg ClusterConfig) (ClusterResult, error) {
	cfg.defaults()
	if cfg.Rate <= 0 {
		return ClusterResult{}, fmt.Errorf("harness: cluster offered rate %v: must be positive", cfg.Rate)
	}
	rt, err := newClusterRouter(srv, mode, cfg, cfg.Chaos)
	if err != nil {
		return ClusterResult{}, err
	}
	defer rt.Close()

	legit := srv.LegitRequests()[0]
	attack := srv.AttackRequest()
	res := ClusterResult{Mode: mode.String(), Chaos: cfg.Chaos.KillEvery > 0 || cfg.Chaos.LatencyEvery > 0, Rate: cfg.Rate}

	// Tenant keys are pre-formatted once: at 100k+ arrivals the per-arrival
	// fmt.Sprintf was a measurable slice of the generation budget.
	tenants := make([]string, cfg.Tenants)
	for i := range tenants {
		tenants[i] = fmt.Sprintf("tenant-%d", i)
	}

	workers := runtime.GOMAXPROCS(0)
	if workers < 1 {
		workers = 1
	}
	groups := make([]*genGroup, workers)
	var (
		inFlight     atomic.Int64
		inFlightPeak atomic.Int64
		genNanos     atomic.Int64 // slowest group's generation wall time
	)

	var gen sync.WaitGroup
	var wg sync.WaitGroup // outstanding submissions
	for w := 0; w < workers; w++ {
		g := &genGroup{}
		groups[w] = g
		gen.Add(1)
		go func(w int) {
			defer gen.Done()
			rng := rand.New(rand.NewSource(cfg.Seed + int64(w)))
			share := cfg.Rate / float64(workers)
			start := time.Now()
			next := start
			for {
				// Exponential inter-arrival gaps give the Poisson process;
				// when generation falls behind schedule (timer granularity,
				// CPU contention) arrivals fire back-to-back as a catch-up
				// burst, preserving the offered rate — which is exactly how
				// open-loop overload behaves.
				next = next.Add(time.Duration(rng.ExpFloat64() / share * float64(time.Second)))
				if next.Sub(start) > cfg.Duration {
					break
				}
				if d := time.Until(next); d > 100*time.Microsecond {
					time.Sleep(d)
				}
				g.offered++
				req := legit
				if cfg.AttackEvery > 0 && g.offered%cfg.AttackEvery == 0 {
					req = attack
				}
				tenant := tenants[rng.Intn(cfg.Tenants)]
				wg.Add(1)
				go func(req servers.Request) {
					defer wg.Done()
					if n := inFlight.Add(1); n > inFlightPeak.Load() {
						// Racy max is fine: the peak is a gauge, not an
						// invariant, and a lost update undercounts by a hair.
						inFlightPeak.Store(n)
					}
					defer inFlight.Add(-1)
					ctx, cancel := context.WithTimeout(context.Background(), cfg.SLO)
					defer cancel()
					t0 := time.Now()
					resp, err := rt.Submit(ctx, tenant, req)
					switch {
					case err == nil && resp.OK():
						g.record(time.Since(t0), cfg.SLO, true)
					case errors.Is(err, serve.ErrShed), errors.Is(err, serve.ErrQueueFull),
						errors.Is(err, serve.ErrOverQuota), errors.Is(err, serve.ErrOverLimit):
						// Admission control doing its job; counted from router stats.
					case err == nil:
						// Executed but not OK (crash under a crashing mode,
						// deadline expiry): counted from router stats.
					default:
						g.record(0, cfg.SLO, false)
					}
				}(req)
			}
			elapsed := time.Since(start).Nanoseconds()
			for {
				cur := genNanos.Load()
				if elapsed <= cur || genNanos.CompareAndSwap(cur, elapsed) {
					break
				}
			}
		}(w)
	}
	gen.Wait()
	wg.Wait()
	// Goodput is computed over the slowest group's actual generation time,
	// not the configured window: if the generators could not keep schedule
	// the cell reports the rate it really offered.
	genElapsed := time.Duration(genNanos.Load())
	if genElapsed < cfg.Duration {
		genElapsed = cfg.Duration
	}

	var latencies []time.Duration
	for _, g := range groups {
		res.Offered += g.offered
		res.Served += g.served
		res.SLOGood += g.sloGood
		res.Errors += g.failures
		latencies = append(latencies, g.latencies...)
	}
	res.Clients = res.Offered
	res.InFlightPeak = inFlightPeak.Load()
	res.GenSeconds = genElapsed.Seconds()
	res.Goodput = float64(res.SLOGood) / genElapsed.Seconds()
	res.P50, res.P95, res.P99 = percentiles(latencies)
	st := rt.Stats()
	res.Shed = st.Shed
	res.Rejected = st.Rejected
	res.OverQuota = st.OverQuota
	res.OverLimit = st.OverLimit
	res.Timeouts = st.Timeouts
	res.Restarts = st.Restarts
	res.Recycles = st.Recycles
	res.Rebalanced = st.Rebalanced
	return res, nil
}

func newClusterRouter(srv servers.Server, mode fo.Mode, cfg ClusterConfig, chaos serve.ChaosConfig) (*serve.Router, error) {
	shardOpts := []serve.Option{
		serve.WithPoolSize(cfg.PoolSize),
		serve.WithQueueDepth(cfg.QueueDepth),
	}
	if chaos.KillEvery > 0 || chaos.LatencyEvery > 0 {
		shardOpts = append(shardOpts, serve.WithChaos(chaos))
	}
	if cfg.BreakerAfter > 0 {
		shardOpts = append(shardOpts, serve.WithBreaker(cfg.BreakerAfter, cfg.BreakerCooldown))
	}
	opts := []serve.RouterOption{
		serve.WithShards(cfg.Shards),
		serve.WithShardOptions(shardOpts...),
	}
	if cfg.Quota > 0 {
		opts = append(opts, serve.WithTenantQuota(cfg.Quota))
	}
	if cfg.TargetP95 > 0 {
		opts = append(opts, serve.WithAIMD(serve.AIMDConfig{TargetP95: cfg.TargetP95}))
	}
	return serve.NewRouter(srv, mode, opts...)
}

// ClusterReport is the JSON artifact of a cluster experiment run: the
// calibrated 1× capacity and every (load, chaos) cell.
type ClusterReport struct {
	Server   string
	Capacity float64 // calibrated 1× service rate, req/s
	SLOms    float64
	Cells    []ClusterResult
}

// JSON renders the report with stable formatting for CI artifacts.
func (r *ClusterReport) JSON() ([]byte, error) {
	return json.MarshalIndent(r, "", "  ")
}

// FormatCluster renders the goodput-under-overload table.
func FormatCluster(rep *ClusterReport) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Calibrated 1x capacity: %.0f req/s (SLO %.0fms)\n", rep.Capacity, rep.SLOms)
	fmt.Fprintf(&sb, "%-18s %-6s %-6s %-9s %-9s %-9s %-9s %-9s %-7s %-7s %-7s %-7s %s\n",
		"Version", "Load", "Chaos", "Clients", "Goodput", "p50", "p95", "p99",
		"Shed", "Reject", "OverQ", "OverL", "Rebal")
	for _, c := range rep.Cells {
		chaos := "off"
		if c.Chaos {
			chaos = "on"
		}
		fmt.Fprintf(&sb, "%-18s %-6s %-6s %-9d %-9.0f %-9s %-9s %-9s %-7d %-7d %-7d %-7d %d\n",
			c.Mode, fmt.Sprintf("%.0fx", c.Load), chaos, c.Clients, c.Goodput,
			fmtLatency(c.P50), fmtLatency(c.P95), fmtLatency(c.P99),
			c.Shed, c.Rejected, c.OverQuota, c.OverLimit, c.Rebalanced)
	}
	return sb.String()
}
