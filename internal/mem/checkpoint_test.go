package mem

import "testing"

// A mutation logged via NoteMutation is undone by Rewind: data bytes, the
// Dead flag, and the pointer shadow all return to their checkpoint state.
func TestCheckpointRewindRestoresUnit(t *testing.T) {
	as := New()
	g := as.AllocGlobal("g", 16)
	copy(g.Data, "original")
	other := as.AllocGlobal("other", 8)
	g.SetShadow(8, other)

	c := as.BeginCheckpoint()
	as.NoteMutation(g)
	copy(g.Data, "clobber!")
	g.SetShadow(8, nil)
	g.SetShadow(0, g)
	as.Rewind(c)

	if string(g.Data[:8]) != "original" {
		t.Errorf("data = %q, want %q", g.Data[:8], "original")
	}
	if g.GetShadow(8) != other {
		t.Errorf("shadow[8] = %v, want other", g.GetShadow(8))
	}
	if g.GetShadow(0) != nil {
		t.Errorf("shadow[0] = %v, want nil", g.GetShadow(0))
	}
}

// NoteMutation logs each unit at most once per checkpoint, and the first
// saved image (not a later intermediate) is what Rewind restores.
func TestCheckpointFirstImageWins(t *testing.T) {
	as := New()
	g := as.AllocGlobal("g", 8)
	copy(g.Data, "AAAAAAAA")

	c := as.BeginCheckpoint()
	as.NoteMutation(g)
	copy(g.Data, "BBBBBBBB")
	as.NoteMutation(g) // second note: must not snapshot the B state
	copy(g.Data, "CCCCCCCC")
	if n := len(c.saved); n != 1 {
		t.Fatalf("undo log has %d entries, want 1", n)
	}
	as.Rewind(c)
	if string(g.Data) != "AAAAAAAA" {
		t.Errorf("data = %q, want AAAAAAAA", g.Data)
	}
}

// Heap blocks allocated after the checkpoint are rolled back by marking
// them dead; they stay in the unit table (the LookupCache coherence
// contract forbids removing non-stack units) and their address range is
// not reused.
func TestCheckpointRewindKillsNewAllocations(t *testing.T) {
	as := New()
	pre, fault := as.Malloc(32)
	if fault != nil {
		t.Fatal(fault)
	}
	c := as.BeginCheckpoint()
	post, fault := as.Malloc(32)
	if fault != nil {
		t.Fatal(fault)
	}
	as.Rewind(c)

	if pre.Dead {
		t.Error("pre-checkpoint block marked dead")
	}
	if !post.Dead {
		t.Error("post-checkpoint block still live")
	}
	if got := as.FindUnit(post.Base); got != post {
		t.Errorf("FindUnit(post) = %v, want the dead unit itself", got)
	}
	next, fault := as.Malloc(32)
	if fault != nil {
		t.Fatal(fault)
	}
	if next.Base < post.End() {
		t.Errorf("rewound address range reused: next at %#x overlaps post [%#x,%#x)",
			next.Base, post.Base, post.End())
	}
}

// Freeing a pre-checkpoint block inside the checkpoint is undone: after
// Rewind the block (and its header) are live again and can be freed for
// real.
func TestCheckpointRewindUndoesFree(t *testing.T) {
	as := New()
	blk, fault := as.Malloc(64)
	if fault != nil {
		t.Fatal(fault)
	}
	c := as.BeginCheckpoint()
	if f := as.Free(blk.Base); f != nil {
		t.Fatalf("free: %v", f)
	}
	if !blk.Dead {
		t.Fatal("free did not mark the block dead")
	}
	as.Rewind(c)
	if blk.Dead {
		t.Error("rewind did not revive the freed block")
	}
	if f := as.Free(blk.Base); f != nil {
		t.Errorf("free after rewind: %v", f)
	}
}

// Stack frames pushed after the checkpoint are unwound by Rewind, bumping
// stackGen so stale cache entries cannot answer for re-pushed frames.
func TestCheckpointRewindUnwindsStack(t *testing.T) {
	as := New()
	sp := as.SP()
	gen := as.stackGen
	c := as.BeginCheckpoint()
	f, fault := as.PushFrame("fn", 32, []LocalSpec{{Name: "x", Off: 0, Size: 32}})
	if fault != nil {
		t.Fatal(fault)
	}
	local := f.Local(0)
	as.Rewind(c)
	if as.SP() != sp {
		t.Errorf("SP = %#x, want %#x", as.SP(), sp)
	}
	if !local.Dead {
		t.Error("post-checkpoint stack unit still live")
	}
	if as.stackGen == gen {
		t.Error("stackGen not bumped by rewind")
	}
}

// Commit keeps the mutated state, and a later checkpoint re-logs the same
// unit (the epoch stamp distinguishes checkpoints).
func TestCheckpointCommitThenNewCheckpoint(t *testing.T) {
	as := New()
	g := as.AllocGlobal("g", 8)
	copy(g.Data, "AAAAAAAA")

	c1 := as.BeginCheckpoint()
	as.NoteMutation(g)
	copy(g.Data, "BBBBBBBB")
	as.Commit(c1)
	if string(g.Data) != "BBBBBBBB" {
		t.Fatalf("commit lost the mutation: %q", g.Data)
	}

	c2 := as.BeginCheckpoint()
	as.NoteMutation(g)
	copy(g.Data, "CCCCCCCC")
	as.Rewind(c2)
	if string(g.Data) != "BBBBBBBB" {
		t.Errorf("data = %q, want the committed BBBBBBBB", g.Data)
	}
}

// Units created during a checkpoint are never logged: NoteMutation on them
// is a no-op and rollback handles them by liveness, not byte restore.
func TestCheckpointNewUnitsNotLogged(t *testing.T) {
	as := New()
	c := as.BeginCheckpoint()
	blk, fault := as.Malloc(16)
	if fault != nil {
		t.Fatal(fault)
	}
	as.NoteMutation(blk)
	g := as.AllocGlobal("g", 8)
	as.NoteMutation(g)
	if n := len(c.saved); n != 0 {
		t.Errorf("undo log has %d entries for post-checkpoint units, want 0", n)
	}
	as.Commit(c)
}

// The heap-corruption flag rolls back with the checkpoint.
func TestCheckpointRewindRestoresHeapCorrupted(t *testing.T) {
	as := New()
	blk, fault := as.Malloc(16)
	if fault != nil {
		t.Fatal(fault)
	}
	c := as.BeginCheckpoint()
	// Smash the header magic (as an OOB write in Standard mode would) and
	// let Free detect it.
	hdr := as.FindUnit(blk.Base - 1)
	as.NoteMutation(hdr)
	hdr.Data[0] ^= 0xff
	if f := as.Free(blk.Base); f == nil || f.Kind != FaultHeapCorrupt {
		t.Fatalf("free on smashed header = %v, want heap corruption", f)
	}
	if !as.HeapCorrupted() {
		t.Fatal("corruption not flagged")
	}
	as.Rewind(c)
	if as.HeapCorrupted() {
		t.Error("rewind did not clear the heap-corruption flag")
	}
	if f := as.Free(blk.Base); f != nil {
		t.Errorf("free after rewind: %v", f)
	}
}

// Checkpoints do not nest, and Commit/Rewind reject checkpoints that are
// not the active one.
func TestCheckpointMisuse(t *testing.T) {
	as := New()
	c := as.BeginCheckpoint()
	mustPanic(t, "nested BeginCheckpoint", func() { as.BeginCheckpoint() })
	as.Commit(c)
	mustPanic(t, "double Commit", func() { as.Commit(c) })
	mustPanic(t, "Rewind after Commit", func() { as.Rewind(c) })
}

func mustPanic(t *testing.T, what string, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Errorf("%s did not panic", what)
		}
	}()
	f()
}
