// Package srv is the public serving API: it re-exports the server
// request/response model, the five server reproductions from the paper's
// evaluation, and the concurrent serving engine, so external code can drive
// them without importing focc's internal packages.
//
// Quickstart — a failure-oblivious Apache pool behind a bounded queue:
//
//	eng, err := srv.NewEngine(srv.NewApacheServer(), fo.FailureOblivious,
//		srv.WithPoolSize(4),
//		srv.WithQueueDepth(64),
//		srv.WithDeadline(time.Second))
//	defer eng.Close()
//	resp, err := eng.Submit(ctx, srv.Request{Op: "GET", Arg: "/index.html"})
//
// Observability: eng.Stats() aggregates the memory-error telemetry of every
// instance the engine has owned, eng.Metrics() adds a live latency
// histogram, responses carry per-request event attribution in MemErrors,
// and MetricsHandler / ExpvarPublish export it all over HTTP (see
// metrics.go and examples/webserver).
package srv

import (
	"context"
	"time"

	"focc/fo"
	"focc/internal/serve"
	"focc/internal/servers"
	"focc/internal/servers/apache"
	"focc/internal/servers/mc"
	"focc/internal/servers/mutt"
	"focc/internal/servers/pine"
	"focc/internal/servers/sendmail"
)

// Re-exported server model types; see internal/servers for details.
type (
	// Request is one unit of work submitted to a server instance.
	Request = servers.Request
	// Response is the server's reply.
	Response = servers.Response
	// Instance is one running server process under a specific mode. An
	// Instance is not safe for concurrent use — one goroutine at a time;
	// the Engine gives every worker its own instance.
	Instance = servers.Instance
	// Server is a compiled server program from which instances are made.
	Server = servers.Server
)

// The five server reproductions from the paper's evaluation (§4.2–§4.6).

// NewPineServer returns the Pine 4.44 model (qmail-style From-quoting
// overflow, §4.2).
func NewPineServer() Server { return pine.NewServer() }

// NewApacheServer returns the Apache 2.0.47 model (mod_rewrite capture
// overflow, §4.3).
func NewApacheServer() Server { return apache.NewServer() }

// NewSendmailServer returns the Sendmail 8.11.6 model (address-parsing
// overflow, §4.4).
func NewSendmailServer() Server { return sendmail.NewServer() }

// NewMCServer returns the Midnight Commander 4.5.55 model (symlink-name
// overflow, §4.5).
func NewMCServer() Server { return mc.NewServer() }

// NewMuttServer returns the Mutt 1.4 model (UTF-8 conversion overflow,
// §4.6).
func NewMuttServer() Server { return mutt.NewServer() }

// Servers returns fresh instances of all five server models.
func Servers() []Server {
	return []Server{
		NewPineServer(),
		NewApacheServer(),
		NewSendmailServer(),
		NewMCServer(),
		NewMuttServer(),
	}
}

// Re-exported serving-engine types; see internal/serve for details.
type (
	// Engine is the concurrent serving engine: a supervised pool of
	// instances behind a bounded admission queue.
	Engine = serve.Engine
	// Option configures an Engine.
	Option = serve.Option
	// Stats is a snapshot of an Engine's counters.
	Stats = serve.Stats
	// ChaosConfig configures deterministic chaos injection (WithChaos).
	ChaosConfig = serve.ChaosConfig
)

// Errors returned by Engine.Submit.
var (
	// ErrQueueFull is the backpressure rejection of a full admission queue.
	ErrQueueFull = serve.ErrQueueFull
	// ErrClosed reports a Submit on a closed engine.
	ErrClosed = serve.ErrClosed
)

// NewEngine starts a serving engine: a pool of srv instances under mode,
// supervised with restart-on-crash, capped exponential backoff, and a
// restart-storm circuit breaker.
func NewEngine(srv Server, mode fo.Mode, opts ...Option) (*Engine, error) {
	return serve.New(srv, mode, opts...)
}

// WithPoolSize sets the number of worker instances.
func WithPoolSize(n int) Option { return serve.WithPoolSize(n) }

// WithQueueDepth bounds the admission queue (reject-with-backpressure).
func WithQueueDepth(n int) Option { return serve.WithQueueDepth(n) }

// WithDeadline sets the default per-request deadline.
func WithDeadline(d time.Duration) Option { return serve.WithDeadline(d) }

// WithBackoff sets the capped exponential restart backoff.
func WithBackoff(base, max time.Duration) Option { return serve.WithBackoff(base, max) }

// WithBreaker configures the restart-storm circuit breaker.
func WithBreaker(consecutive int, cooldown time.Duration) Option {
	return serve.WithBreaker(consecutive, cooldown)
}

// WithWarmSpares keeps up to n pre-created instances on standby so a
// crashed worker is replaced without paying instance-creation cost on the
// serving path (Apache-style pre-forking).
func WithWarmSpares(n int) Option { return serve.WithWarmSpares(n) }

// WithChaos enables deterministic process-level chaos injection on the
// engine: every KillEvery-th executed request kills its serving instance
// after responding (the supervisor replaces it), and every LatencyEvery-th
// request is delayed by Latency before execution — long enough a delay
// trips the configured deadline. Injection is counter-keyed, not random;
// see the fault-injection campaign (internal/inject, `fobench -experiment
// campaign`) for seeded plans built on top of it.
func WithChaos(c ChaosConfig) Option { return serve.WithChaos(c) }

// Handle processes one request on inst with ctx bound for cancellation —
// a convenience for driving a single instance without an Engine.
func Handle(ctx context.Context, inst Instance, req Request) Response {
	return inst.HandleContext(ctx, req)
}
