package inject

import (
	"bytes"
	"testing"
	"time"

	"focc/fo"
	"focc/internal/serve"
)

// campaignPlan is the shared small-but-real test plan: two servers, all
// fault classes, a two-strategy sweep, and a chaos section without
// deadlines (kill/delay counters are counter-keyed and deterministic; a
// deadline would make classification depend on wall-clock speed).
func campaignPlan() Plan {
	return Plan{
		Seed:       7,
		Faults:     12,
		Servers:    []string{"pine", "sendmail"},
		Strategies: []Strategy{StratSmallInt, StratZero},
		Chaos: &ChaosPlan{
			Requests:     12,
			KillEvery:    4,
			LatencyEvery: 5,
			Latency:      time.Millisecond,
		},
	}
}

// Two runs of the same (seed, plan) must produce byte-identical JSON
// reports — the campaign's determinism contract (acceptance criterion).
func TestCampaignDeterminism(t *testing.T) {
	plan := campaignPlan()
	r1, err := Run(plan, AllTargets())
	if err != nil {
		t.Fatalf("run 1: %v", err)
	}
	r2, err := Run(plan, AllTargets())
	if err != nil {
		t.Fatalf("run 2: %v", err)
	}
	j1, err := r1.JSON()
	if err != nil {
		t.Fatalf("marshal 1: %v", err)
	}
	j2, err := r2.JSON()
	if err != nil {
		t.Fatalf("marshal 2: %v", err)
	}
	if !bytes.Equal(j1, j2) {
		t.Fatalf("same seed+plan produced different reports:\n--- run 1 ---\n%s\n--- run 2 ---\n%s", j1, j2)
	}
	// A different seed must actually change the sampled points (guards
	// against the PRNG being ignored).
	plan.Seed = 8
	r3, err := Run(plan, AllTargets())
	if err != nil {
		t.Fatalf("run 3: %v", err)
	}
	j3, err := r3.JSON()
	if err != nil {
		t.Fatalf("marshal 3: %v", err)
	}
	if bytes.Equal(j1, j3) {
		t.Fatal("different seeds produced identical reports")
	}
}

// The campaign must reproduce the paper's ordering: FailureOblivious
// survival strictly highest on every server, Standard showing
// corrupted-output outcomes, BoundsCheck showing terminations.
func TestCampaignPaperOrdering(t *testing.T) {
	plan := Plan{
		Seed:       1,
		Faults:     25,
		Servers:    []string{"pine", "apache"},
		Strategies: []Strategy{}, // skip the sweep; ordering is about the main cells
	}
	rep, err := Run(plan, AllTargets())
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	t.Logf("\n%s", FormatReport(rep))
	stdCorrupted, bcTerminated := 0, 0
	for _, s := range rep.Servers {
		rates := map[string]float64{}
		for _, c := range s.Cells {
			rates[c.Mode] = c.SurvivalRate
			switch c.Mode {
			case "standard":
				stdCorrupted += c.Corrupted
			case "bounds-check":
				bcTerminated += c.Terminated
			}
		}
		foRate := rates["failure-oblivious"]
		if !(foRate > rates["standard"] && foRate > rates["bounds-check"]) {
			t.Errorf("%s: failure-oblivious survival %.2f not strictly highest (standard %.2f, bounds-check %.2f)",
				s.Server, foRate, rates["standard"], rates["bounds-check"])
		}
	}
	if stdCorrupted == 0 {
		t.Error("standard mode showed no corrupted-output outcomes")
	}
	if bcTerminated == 0 {
		t.Error("bounds-check mode showed no terminations")
	}
}

// The rewind cell's contract: survival matches failure-oblivious (every
// detected memory error is survived, by rollback instead of manufactured
// values), nothing terminates, and — the property failure-oblivious cannot
// offer — zero corrupted outputs from detected memory errors. The only
// corrupted classifications allowed under rewind are fault classes that
// never trip the detector (pre-request corrupt-byte state corruption and
// gracefully handled alloc-oom), identified by a zero memory-error count on
// the point.
func TestCampaignRewindIntegrity(t *testing.T) {
	plan := Plan{
		Seed:       1,
		Faults:     25,
		Servers:    []string{"pine", "apache"},
		Strategies: []Strategy{},
	}
	rep, err := Run(plan, AllTargets())
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	for _, s := range rep.Servers {
		cells := map[string]Cell{}
		for _, c := range s.Cells {
			cells[c.Mode] = c
		}
		rw, fob := cells["rewind"], cells["failure-oblivious"]
		if rw.Mode == "" || fob.Mode == "" {
			t.Fatalf("%s: missing rewind or failure-oblivious cell", s.Server)
		}
		if rw.SurvivalRate < fob.SurvivalRate {
			t.Errorf("%s: rewind survival %.2f below failure-oblivious %.2f",
				s.Server, rw.SurvivalRate, fob.SurvivalRate)
		}
		if rw.Terminated != 0 {
			t.Errorf("%s: rewind terminated %d points, want 0", s.Server, rw.Terminated)
		}
		if rw.Rewound == 0 {
			t.Errorf("%s: rewind cell rolled back no points — policy not exercised", s.Server)
		}
		for i, r := range rw.Results {
			if r.Outcome == OutcomeCorrupted && r.MemErrors != 0 {
				t.Errorf("%s point %d (%s): corrupted output despite %d detected memory errors — rollback leaked state",
					s.Server, i, s.Points[i].Class, r.MemErrors)
			}
			if r.Outcome == OutcomeRewound && r.MemErrors == 0 {
				t.Errorf("%s point %d (%s): rewound without a detected memory error",
					s.Server, i, s.Points[i].Class)
			}
		}
	}
}

// The chaos section's counters are fully determined by the plan: a
// single-worker engine fed sequentially kills on every KillEvery-th and
// delays on every LatencyEvery-th request.
func TestCampaignChaosCounters(t *testing.T) {
	plan := campaignPlan()
	rep, err := Run(plan, AllTargets())
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if rep.ChaosServer != "pine" {
		t.Fatalf("chaos server = %q, want pine", rep.ChaosServer)
	}
	if len(rep.Chaos) != 4 {
		t.Fatalf("chaos cells = %d, want one per campaign mode (4)", len(rep.Chaos))
	}
	cp := plan.Chaos
	wantKills := cp.Requests / int(cp.KillEvery)
	wantDelays := cp.Requests / int(cp.LatencyEvery)
	for _, c := range rep.Chaos {
		if c.Kills != wantKills {
			t.Errorf("%s: kills = %d, want %d", c.Mode, c.Kills, wantKills)
		}
		if c.Delays != wantDelays {
			t.Errorf("%s: delays = %d, want %d", c.Mode, c.Delays, wantDelays)
		}
		// Legit requests never crash organically, so every restart is a
		// chaos kill; with no deadline every request completes OK.
		if c.Restarts != wantKills {
			t.Errorf("%s: restarts = %d, want %d", c.Mode, c.Restarts, wantKills)
		}
		if c.OK != cp.Requests {
			t.Errorf("%s: ok = %d, want %d", c.Mode, c.OK, cp.Requests)
		}
		if c.Deadlines != 0 {
			t.Errorf("%s: deadlines = %d, want 0", c.Mode, c.Deadlines)
		}
	}
}

// Point sampling respects the class-specific headroom invariants: every
// oob ordinal and malloc ordinal lies inside the profiled request window.
func TestSampledPointsWithinProfile(t *testing.T) {
	plan := campaignPlan()
	rep, err := Run(plan, AllTargets())
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	for _, s := range rep.Servers {
		if len(s.Points) != plan.Faults {
			t.Errorf("%s: %d points, want %d", s.Server, len(s.Points), plan.Faults)
		}
		for i, p := range s.Points {
			switch p.Class {
			case OOBRead, OOBWrite:
				if p.At == 0 || p.Shape == "" {
					t.Errorf("%s point %d: unparameterized oob spec %+v", s.Server, i, p)
				}
			case AllocFault:
				if p.MallocN == 0 {
					t.Errorf("%s point %d: alloc fault with MallocN=0", s.Server, i)
				}
			case CorruptByte:
				if p.Mask == 0 {
					t.Errorf("%s point %d: corrupt-byte with zero mask", s.Server, i)
				}
			default:
				t.Errorf("%s point %d: unknown class %q", s.Server, i, p.Class)
			}
		}
		for _, c := range s.Cells {
			if len(c.Results) != len(s.Points) {
				t.Errorf("%s/%s: %d results for %d points", s.Server, c.Mode, len(c.Results), len(s.Points))
			}
		}
	}
}

// TestCampaignRebalanceSurvival drives the campaign's attack workload
// through a sharded router with a tight restart breaker: under the
// crashing modes the attacked tenant's home shard trips and the router
// reroutes its traffic (Rebalanced > 0, zero submit failures), while
// failure-oblivious absorbs the attacks without ever tripping a shard —
// so the paper's survival ordering (failure-oblivious strictly highest)
// holds even while shards are tripped out of the ring.
func TestCampaignRebalanceSurvival(t *testing.T) {
	target := AllTargets()[1] // apache, the throughput chapter's server
	if target.Name != "apache" {
		t.Fatalf("target order changed: got %q, want apache second", target.Name)
	}
	const legitN = 30
	survival := map[string]float64{}
	for _, mode := range []fo.Mode{fo.Standard, fo.BoundsCheck, fo.FailureOblivious} {
		srv := target.New()
		rt, err := serve.NewRouter(srv, mode,
			serve.WithShards(3),
			serve.WithShardOptions(
				serve.WithPoolSize(1), serve.WithQueueDepth(64),
				serve.WithBackoff(time.Millisecond, 2*time.Millisecond),
				serve.WithBreaker(2, 2*time.Second)))
		if err != nil {
			t.Fatalf("%v: %v", mode, err)
		}
		tenant := "tenant-attacked"
		home := rt.Shard(tenant)
		attack := srv.AttackRequest()
		legit := srv.LegitRequests()

		survived, total := 0, 0
		for i := 0; i < 2; i++ { // back-to-back: consecutive crashes trip the breaker
			resp, err := rt.Submit(nil, tenant, attack)
			if err != nil {
				t.Fatalf("%v attack %d: %v", mode, i, err)
			}
			total++
			if !resp.Crashed() {
				survived++
			}
		}
		crashing := mode != fo.FailureOblivious
		if crashing {
			deadline := time.Now().Add(5 * time.Second)
			for rt.Stats().Shards[home].BreakerTrips == 0 {
				if time.Now().After(deadline) {
					t.Fatalf("%v: attacked shard never tripped", mode)
				}
				time.Sleep(time.Millisecond)
			}
		}
		for i := 0; i < legitN; i++ {
			resp, err := rt.Submit(nil, tenant, legit[i%len(legit)])
			if err != nil {
				t.Fatalf("%v legit %d: %v — availability lost during trip", mode, i, err)
			}
			total++
			if !resp.Crashed() {
				survived++
			}
		}
		st := rt.Stats()
		rt.Close()
		if crashing && st.Rebalanced == 0 {
			t.Errorf("%v: breaker tripped but no request was rebalanced", mode)
		}
		if !crashing && st.Rebalanced != 0 {
			t.Errorf("failure-oblivious rebalanced %d requests — attacks must not trip shards", st.Rebalanced)
		}
		survival[mode.String()] = float64(survived) / float64(total)
	}
	fob := survival["failure-oblivious"]
	if !(fob > survival["standard"] && fob > survival["bounds-check"]) {
		t.Errorf("survival ordering broken under tripped shards: failure-oblivious %.2f, standard %.2f, bounds-check %.2f",
			fob, survival["standard"], survival["bounds-check"])
	}
}
