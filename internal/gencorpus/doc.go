// Package gencorpus holds the checked-in, ahead-of-time generated Go
// code (the third execution engine; see internal/gen and DESIGN.md §16)
// for the engine-equivalence corpus: the dispatch/integration programs,
// the simulated-cycle pin workload, the engine-diff torture fixtures, a
// deterministic prefix of the randomized expression differential, and
// the five paper servers. Each *_gen.go file registers its program by
// source hash at init time; importing this package (blank import is
// enough) makes fo.MachineConfig{UseGenerated: true} work for every
// corpus program without compiling Go at test time.
//
// Never edit the *_gen.go files; regenerate with `go generate ./...`
// (CI fails on drift).
package gencorpus

//go:generate go run focc/cmd/gencorpus -out .
