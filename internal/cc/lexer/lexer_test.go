package lexer

import (
	"testing"

	"focc/internal/cc/token"
)

func kinds(t *testing.T, src string) []token.Kind {
	t.Helper()
	toks, errs := NewString("t.c", src).All()
	if len(errs) > 0 {
		t.Fatalf("lex %q: %v", src, errs[0])
	}
	out := make([]token.Kind, len(toks))
	for i, tok := range toks {
		out[i] = tok.Kind
	}
	return out
}

func one(t *testing.T, src string) token.Token {
	t.Helper()
	toks, errs := NewString("t.c", src).All()
	if len(errs) > 0 {
		t.Fatalf("lex %q: %v", src, errs[0])
	}
	if len(toks) != 1 {
		t.Fatalf("lex %q: got %d tokens, want 1", src, len(toks))
	}
	return toks[0]
}

func TestKeywordsAndIdents(t *testing.T) {
	got := kinds(t, "int foo while return unsigned charlie")
	want := []token.Kind{token.KwInt, token.Ident, token.KwWhile,
		token.KwReturn, token.KwUnsigned, token.Ident}
	if len(got) != len(want) {
		t.Fatalf("got %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("token %d = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestIntLiterals(t *testing.T) {
	cases := []struct {
		src      string
		val      int64
		unsigned bool
		long     bool
	}{
		{"0", 0, false, false},
		{"42", 42, false, false},
		{"0x2A", 42, false, false},
		{"0X2a", 42, false, false},
		{"052", 42, false, false},
		{"42U", 42, true, false},
		{"42L", 42, false, true},
		{"42UL", 42, true, true},
		{"42lu", 42, true, true},
		{"0xffffffff", 0xffffffff, false, false},
		{"9223372036854775807", 1<<63 - 1, false, false},
	}
	for _, c := range cases {
		tok := one(t, c.src)
		if tok.Kind != token.IntLit || tok.Val != c.val ||
			tok.Unsigned != c.unsigned || tok.Long != c.long {
			t.Errorf("%q -> %+v, want val=%d u=%v l=%v", c.src, tok, c.val, c.unsigned, c.long)
		}
	}
}

func TestCharLiterals(t *testing.T) {
	cases := map[string]int64{
		`'a'`:    'a',
		`'\n'`:   '\n',
		`'\t'`:   '\t',
		`'\0'`:   0,
		`'\\'`:   '\\',
		`'\''`:   '\'',
		`'\x41'`: 'A',
		`'\101'`: 'A',
		`' '`:    ' ',
	}
	for src, want := range cases {
		tok := one(t, src)
		if tok.Kind != token.CharLit || tok.Val != want {
			t.Errorf("%s -> kind=%v val=%d, want CharLit %d", src, tok.Kind, tok.Val, want)
		}
	}
}

func TestStringLiterals(t *testing.T) {
	cases := map[string]string{
		`"hello"`:        "hello",
		`"a\nb"`:         "a\nb",
		`"tab\there"`:    "tab\there",
		`"q\"uote"`:      `q"uote`,
		`"\x41\102"`:     "AB",
		`""`:             "",
		`"con" "cat"`:    "concat",
		"\"a\" \n \"b\"": "ab", // concatenation across lines
	}
	for src, want := range cases {
		tok := one(t, src)
		if tok.Kind != token.StringLit || tok.Text != want {
			t.Errorf("%s -> kind=%v text=%q, want %q", src, tok.Kind, tok.Text, want)
		}
	}
}

func TestOperators(t *testing.T) {
	src := "<<= >>= ... -> ++ -- << >> <= >= == != && || += -= *= /= %= &= |= ^= ( ) { } [ ] ; , . + - * / % & | ^ ~ ! ? : < > ="
	want := []token.Kind{
		token.ShlEq, token.ShrEq, token.Ellipsis, token.Arrow, token.Inc,
		token.Dec, token.Shl, token.Shr, token.Le, token.Ge, token.EqEq,
		token.NotEq, token.AndAnd, token.OrOr, token.PlusEq, token.MinusEq,
		token.StarEq, token.SlashEq, token.PercentEq, token.AmpEq,
		token.PipeEq, token.CaretEq, token.LParen, token.RParen,
		token.LBrace, token.RBrace, token.LBracket, token.RBracket,
		token.Semi, token.Comma, token.Dot, token.Plus, token.Minus,
		token.Star, token.Slash, token.Percent, token.Amp, token.Pipe,
		token.Caret, token.Tilde, token.Bang, token.Question, token.Colon,
		token.Lt, token.Gt, token.Assign,
	}
	got := kinds(t, src)
	if len(got) != len(want) {
		t.Fatalf("got %d tokens, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("token %d = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestMaximalMunch(t *testing.T) {
	// a+++b must lex as a ++ + b.
	got := kinds(t, "a+++b")
	want := []token.Kind{token.Ident, token.Inc, token.Plus, token.Ident}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
}

func TestComments(t *testing.T) {
	got := kinds(t, "a // line comment\nb /* block */ c /* multi\nline */ d")
	want := []token.Kind{token.Ident, token.Ident, token.Ident, token.Ident}
	if len(got) != len(want) {
		t.Fatalf("got %v", got)
	}
}

func TestPositions(t *testing.T) {
	toks, errs := NewString("f.c", "int x;\n  y = 2;").All()
	if len(errs) > 0 {
		t.Fatal(errs[0])
	}
	if p := toks[0].Pos; p.File != "f.c" || p.Line != 1 || p.Col != 1 {
		t.Errorf("first token pos = %v", p)
	}
	// "y" is on line 2 col 3.
	if p := toks[3].Pos; p.Line != 2 || p.Col != 3 {
		t.Errorf("y pos = %v", p)
	}
}

func TestErrors(t *testing.T) {
	for _, src := range []string{
		"'a",                         // unterminated char
		`"abc`,                       // unterminated string
		"/* comment",                 // unterminated block comment
		"0x",                         // hex without digits
		"089",                        // bad octal digit
		"@",                          // stray character
		"123abc",                     // junk after number
		`'\q'`,                       // unknown escape
		"99999999999999999999999999", // overflow
	} {
		_, errs := NewString("t.c", src).All()
		if len(errs) == 0 {
			t.Errorf("lex %q: expected an error", src)
		}
	}
}

func TestEOFIsSticky(t *testing.T) {
	l := NewString("t.c", "x")
	l.Next()
	for i := 0; i < 3; i++ {
		if tok := l.Next(); tok.Kind != token.EOF {
			t.Fatalf("Next after end = %v, want EOF", tok)
		}
	}
}

func TestKindString(t *testing.T) {
	if token.Ident.String() != "identifier" {
		t.Errorf("Ident.String() = %q", token.Ident.String())
	}
	if token.PlusEq.String() != "+=" {
		t.Errorf("PlusEq.String() = %q", token.PlusEq.String())
	}
	if token.Kind(9999).String() == "" {
		t.Error("unknown kind should still render")
	}
}
