// Package apache models Apache 2.0.47's mod_rewrite vulnerability [1]: the
// rewrite engine holds pairs of capture offsets in a stack buffer with room
// for ten captures, but the matcher writes the offsets of every capture the
// configured pattern defines. A rewrite rule with more than ten captures
// plus a URL that matches it make Apache write beyond the end of the
// buffer. Because the substitution language only references $0..$9, the
// failure-oblivious version — which discards the out-of-bounds offset
// writes — produces exactly the right output (paper §4.3.2).
package apache

import (
	"context"
	"encoding/binary"
	"fmt"
	"strings"
	"sync"

	"focc/fo"
	"focc/internal/cc/token"
	"focc/internal/interp"
	"focc/internal/servers"
)

// Source is the Apache model's C code, including a small backtracking
// pattern matcher with captures (pattern syntax: literal characters, '*'
// matches any run, '(' ')' delimit non-nested captures).
const Source = `
#include <stdlib.h>
#include <string.h>
#include <stdio.h>

#define AP_MAX_REG_MATCH 10
#define RX_MAXGROUPS 32

struct regmatch { int rm_so; int rm_eo; };

char rewritten_uri[512];
char response_buf[1048576];
int  response_len = 0;
char file_buf[1048576];

/* host: read a file from the document root. Returns size or -1. */
int http_read_file(const char *path, char *buf, int bufsize);

/* Backtracking matcher. Writes the offsets of group g into m[g+1] — with
   no bound on g, which is the vulnerability: the caller's array only has
   room for AP_MAX_REG_MATCH entries. */
static int rx_rec(const char *pat, int pi, const char *str, int si,
                  int *gopen, struct regmatch *m)
{
	int c = pat[pi];
	int j, g;
	if (c == '\0')
		return str[si] == '\0';
	if (c == '(') {
		g = 0;
		for (j = 0; j < pi; j++)
			if (pat[j] == '(')
				g++;
		gopen[g] = si;
		return rx_rec(pat, pi + 1, str, si, gopen, m);
	}
	if (c == ')') {
		g = 0;
		for (j = 0; j < pi; j++)
			if (pat[j] == ')')
				g++;
		m[g + 1].rm_so = gopen[g];   /* unbounded store: the bug */
		m[g + 1].rm_eo = si;
		return rx_rec(pat, pi + 1, str, si, gopen, m);
	}
	if (c == '*') {
		int end = si;
		for (;;) {
			if (rx_rec(pat, pi + 1, str, end, gopen, m))
				return 1;
			if (str[end] == '\0')
				return 0;
			end++;
		}
	}
	if (str[si] == c)
		return rx_rec(pat, pi + 1, str, si + 1, gopen, m);
	return 0;
}

static int ap_regexec(const char *pat, const char *str, struct regmatch *pmatch)
{
	int gopen[RX_MAXGROUPS];
	int i, ngroups = 0;
	for (i = 0; pat[i] != '\0'; i++)
		if (pat[i] == '(')
			ngroups++;
	if (!rx_rec(pat, 0, str, 0, gopen, pmatch))
		return -1;
	pmatch[0].rm_so = 0;
	pmatch[0].rm_eo = (int) strlen(str);
	return ngroups;
}

/* Apply one rewrite rule. Modeled on apply_rewrite_rule: the regmatch
   buffer has room for ten captures; patterns may define more. */
int apache_try_rewrite(const char *uri, const char *pattern, const char *subst)
{
	struct regmatch regmatch[AP_MAX_REG_MATCH];
	int n, i, o = 0;
	n = ap_regexec(pattern, uri, regmatch);
	if (n < 0)
		return 0;
	for (i = 0; subst[i] != '\0' && o < (int)(sizeof(rewritten_uri)) - 1; i++) {
		if (subst[i] == '$' && subst[i+1] >= '0' && subst[i+1] <= '9') {
			int g = subst[i+1] - '0';
			int j;
			for (j = regmatch[g].rm_so;
			     j < regmatch[g].rm_eo && o < (int)(sizeof(rewritten_uri)) - 1;
			     j++)
				rewritten_uri[o++] = uri[j];
			i++;
			continue;
		}
		rewritten_uri[o++] = subst[i];
	}
	rewritten_uri[o] = '\0';
	return 1;
}

unsigned int mime_hash[8192];

/* Child-process initialization: build the module lookup tables a child
   constructs after fork (this is the process-management overhead that
   makes restart-per-attack expensive for the Standard and Bounds Check
   versions in the paper's throughput experiment, section 4.3.2). */
int apache_child_init(void)
{
	unsigned int x = 12345;
	int i;
	for (i = 0; i < (int)(sizeof(mime_hash) / sizeof(mime_hash[0])); i++) {
		x = x * 1103515245u + 12345u;
		mime_hash[i] = x;
	}
	return 0;
}

/* Serve a static file: bulk copy dominated (Figure 3 workloads). */
int apache_serve(const char *path)
{
	int n, hl;
	n = http_read_file(path, file_buf, (int)(sizeof(file_buf)));
	if (n < 0) {
		response_len = snprintf(response_buf, sizeof(response_buf),
			"HTTP/1.1 404 Not Found\r\nContent-Length: 13\r\n\r\n404 not found");
		return 404;
	}
	hl = snprintf(response_buf, sizeof(response_buf),
		"HTTP/1.1 200 OK\r\nContent-Length: %d\r\n\r\n", n);
	memcpy(&response_buf[hl], file_buf, (size_t) n);
	response_len = hl + n;
	return 200;
}
`

var (
	compileOnce sync.Once
	prog        *fo.Program
	compileErr  error
)

// Program returns the compiled Apache program.
func Program() (*fo.Program, error) {
	compileOnce.Do(func() {
		prog, compileErr = fo.Compile("apache.c", Source)
	})
	return prog, compileErr
}

// Rule is one configured rewrite rule.
type Rule struct {
	Pattern string
	Subst   string
}

// VulnerableRule returns a rewrite rule whose pattern defines ngroups
// captures — more than the ten the offset buffer can hold when
// ngroups > 9 (regmatch[0] holds the whole match).
func VulnerableRule(ngroups int) Rule {
	var pat, subst strings.Builder
	pat.WriteString("/api")
	for i := 0; i < ngroups; i++ {
		pat.WriteString("/(*)")
	}
	subst.WriteString("/v2/$1/$2")
	return Rule{Pattern: pat.String(), Subst: subst.String()}
}

// Server is the Apache model: a compiled program plus configuration (the
// rewrite rules and the virtual document root).
type Server struct {
	Rules   []Rule
	DocRoot map[string]string
}

// NewServer returns an Apache server configured with a benign rewrite rule,
// the vulnerable many-captures rule, and the Figure 3 document root (a
// 5 KByte home page and an 830 KByte file).
func NewServer() *Server {
	return &Server{
		Rules: []Rule{
			{Pattern: "/old/(*)", Subst: "/pages/$1"},
			VulnerableRule(16),
		},
		DocRoot: map[string]string{
			"/index.html":  strings.Repeat("<p>project home page</p>\n", 256)[:5*1024],
			"/pages/a":     "page A",
			"/v2/x/x":      "api v2 endpoint",
			"/files/big":   strings.Repeat("0123456789abcdef", 830*1024/16),
			"/files/small": strings.Repeat("x", 512),
		},
	}
}

// Name implements servers.Server.
func (s *Server) Name() string { return "apache" }

// Instance is one Apache child process.
type Instance struct {
	servers.Base
	srv *Server
}

// New implements servers.Server: it creates one child process.
func (s *Server) New(mode fo.Mode) (servers.Instance, error) {
	return s.NewWithConfig(mode, nil)
}

// NewWithConfig implements servers.Configurable.
func (s *Server) NewWithConfig(mode fo.Mode, hook servers.ConfigHook) (servers.Instance, error) {
	p, err := Program()
	if err != nil {
		return nil, err
	}
	log := fo.NewEventLog(0)
	cfg := fo.MachineConfig{
		Mode: mode,
		Log:  log,
		Builtins: map[string]interp.BuiltinFunc{
			"http_read_file": s.readFile,
		},
	}
	if hook != nil {
		hook(&cfg)
	}
	m, err := p.NewMachine(cfg)
	if err != nil {
		return nil, err
	}
	if res := m.Call("apache_child_init"); res.Outcome != fo.OutcomeOK {
		return nil, fmt.Errorf("apache child init: %v (%v)", res.Outcome, res.Err)
	}
	return &Instance{
		Base: servers.Base{ServerName: "apache", M: m, EvLog: log},
		srv:  s,
	}, nil
}

// readFile is the host (filesystem) side of apache_serve.
func (s *Server) readFile(m *interp.Machine, pos token.Pos, args []interp.Value) interp.Value {
	path, err := m.ReadCString(args[0], 4096)
	if err != nil {
		return interp.Int(-1)
	}
	content, ok := s.DocRoot[path]
	if !ok {
		return interp.Int(-1)
	}
	n := int(args[2].I)
	if len(content) > n {
		content = content[:n]
	}
	// The kernel writes the file into the caller's buffer; charge the
	// simulated clock for the device + copy work (identical in every
	// mode, which is what amortizes the checking overhead away on
	// I/O-dominated requests — paper §4.7).
	m.AddressSpace().RawWrite(args[1].Ptr.Addr, []byte(content))
	m.ChargeCycles(uint64(len(content))/8 + 50_000)
	return interp.Int(int64(len(content)))
}

// Handle implements servers.Instance. Op "GET" serves req.Arg as a URI.
func (inst *Instance) Handle(req servers.Request) servers.Response {
	if req.Op != "GET" {
		return servers.Response{Outcome: fo.OutcomeOK, Status: 400, Body: "bad request"}
	}
	uri := req.Arg
	path := uri
	for _, r := range inst.srv.Rules {
		u := inst.M.NewCString(uri)
		pat := inst.M.NewCString(r.Pattern)
		sub := inst.M.NewCString(r.Subst)
		res := inst.M.Call("apache_try_rewrite", u, pat, sub)
		if res.Outcome != fo.OutcomeOK {
			return servers.Response{Outcome: res.Outcome, Err: res.Err}
		}
		if res.Value.I == 1 {
			rw, err := inst.M.ReadCString(inst.globalPtr("rewritten_uri"), 511)
			if err == nil {
				path = rw
			}
			break
		}
	}
	res := inst.M.Call("apache_serve", inst.M.NewCString(path))
	if res.Outcome != fo.OutcomeOK {
		return servers.Response{Outcome: res.Outcome, Err: res.Err}
	}
	return servers.Response{
		Outcome: fo.OutcomeOK,
		Status:  int(res.Value.I),
		Body:    inst.responseBody(),
	}
}

// HandleContext implements servers.Instance: Handle with ctx bound to the
// machine for per-request cancellation, and the memory-error events the
// request causes attributed into Response.MemErrors.
func (inst *Instance) HandleContext(ctx context.Context, req servers.Request) servers.Response {
	defer inst.BindContext(ctx)()
	return inst.Attribute(func() servers.Response { return inst.Handle(req) })
}

func (inst *Instance) globalPtr(name string) fo.Value {
	u, _ := inst.M.GlobalUnit(name)
	return interp.UnitPointer(u)
}

func (inst *Instance) responseBody() string {
	buf, ok := inst.M.GlobalUnit("response_buf")
	if !ok {
		return ""
	}
	lenU, ok := inst.M.GlobalUnit("response_len")
	if !ok {
		return ""
	}
	n := int(int32(binary.LittleEndian.Uint32(lenU.Data[:4])))
	if n < 0 || n > len(buf.Data) {
		n = 0
	}
	return string(buf.Data[:n])
}

// LegitRequests implements servers.Server (the Figure 3 workloads).
func (s *Server) LegitRequests() []servers.Request {
	return []servers.Request{
		{Op: "GET", Arg: "/index.html"}, // Small: the 5KB home page
		{Op: "GET", Arg: "/files/big"},  // Large: the 830KB file
	}
}

// AttackRequest implements servers.Server: a URI matching the configured
// sixteen-capture rule.
func (s *Server) AttackRequest() servers.Request {
	parts := make([]string, 16)
	for i := range parts {
		parts[i] = "x"
	}
	return servers.Request{Op: "GET", Arg: "/api/" + strings.Join(parts, "/")}
}
