package harness

import (
	"fmt"
	"sync"
	"time"

	"focc/fo"
	"focc/internal/servers"
)

// ChildPool models Apache's regenerating pool of child processes: requests
// are handed to children round-robin, and a child that dies (segfault under
// Standard, memory-error termination under BoundsCheck) is replaced by a
// freshly created process — at real instance-creation cost, which is
// exactly the overhead the paper attributes the Standard/BoundsCheck
// throughput loss to (§4.3.2).
//
// ChildPool is safe for concurrent callers, but serializes request
// processing behind one mutex (instances are single-goroutine; see the
// concurrency contract on servers.Instance). It remains the simple
// sequential pool of the figure experiments; for genuine concurrency use
// the serve.Engine, which gives every worker goroutine its own instance.
type ChildPool struct {
	srv servers.Server

	// spares holds pre-warmed replacement children; a filler goroutine
	// blocks on sending into it, so the standby set refills itself as soon
	// as a crashed child takes a spare. This models Apache pre-forking
	// children before they are needed: the creation cost is still paid (by
	// the filler, off the request path), but a single crash no longer
	// stalls the next request behind a cold spawn. Restarts are counted
	// identically either way.
	spares chan servers.Instance
	stop   chan struct{}
	wg     sync.WaitGroup

	mu       sync.Mutex
	mode     fo.Mode
	children []servers.Instance
	next     int
	restarts int
}

// NewChildPool creates a pool of n children, plus n pre-warmed spares kept
// on standby for crash replacement. Call Close when done with the pool to
// stop the spare filler and reclaim the standby instances.
func NewChildPool(srv servers.Server, mode fo.Mode, n int) (*ChildPool, error) {
	if n <= 0 {
		n = 4
	}
	p := &ChildPool{
		srv:    srv,
		mode:   mode,
		spares: make(chan servers.Instance, n),
		stop:   make(chan struct{}),
	}
	for i := 0; i < n; i++ {
		inst, err := srv.New(mode)
		if err != nil {
			return nil, err
		}
		p.children = append(p.children, inst)
	}
	p.wg.Add(1)
	go p.filler()
	return p, nil
}

// filler keeps the spare channel topped up, blocking on the bounded send so
// it wakes exactly when a spare is taken.
func (p *ChildPool) filler() {
	defer p.wg.Done()
	for {
		select {
		case <-p.stop:
			return
		default:
		}
		inst, err := p.srv.New(p.mode)
		if err != nil {
			select {
			case <-p.stop:
				return
			case <-time.After(time.Millisecond):
			}
			continue
		}
		select {
		case p.spares <- inst:
		case <-p.stop:
			releaseInstance(inst)
			return
		}
	}
}

func releaseInstance(inst servers.Instance) {
	if r, ok := inst.(interface{ Release() }); ok {
		r.Release()
	}
}

// Close stops the spare filler and releases the standby instances. The pool
// must not be used afterwards. Close is idempotent per pool lifetime only
// in the sense that a second call panics (close of closed channel); call it
// once, typically via defer.
func (p *ChildPool) Close() {
	close(p.stop)
	p.wg.Wait()
	for {
		select {
		case inst := <-p.spares:
			releaseInstance(inst)
		default:
			return
		}
	}
}

// Handle dispatches one request to the pool, replacing the child first if a
// previous request killed it — from the warm-spare standby set when one is
// ready, by a cold spawn otherwise.
func (p *ChildPool) Handle(req servers.Request) (servers.Response, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	i := p.next
	p.next = (p.next + 1) % len(p.children)
	if !p.children[i].Alive() {
		releaseInstance(p.children[i])
		var inst servers.Instance
		select {
		case inst = <-p.spares:
		default:
			cold, err := p.srv.New(p.mode)
			if err != nil {
				return servers.Response{}, err
			}
			inst = cold
		}
		p.children[i] = inst
		p.restarts++
	}
	return p.children[i].Handle(req), nil
}

// Restarts returns the number of children replaced after crashing.
func (p *ChildPool) Restarts() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.restarts
}

// ThroughputResult is one row of the §4.3.2 throughput experiment.
type ThroughputResult struct {
	Mode       fo.Mode
	LegitDone  int
	Attacks    int
	Restarts   int
	Elapsed    time.Duration
	Throughput float64 // legitimate requests per second
}

// AttackThroughput measures legitimate-request throughput while the pool is
// being flooded with attack requests: between consecutive legitimate
// fetches, attacksPerLegit attack requests arrive (the paper used several
// machines to load the server with attack requests while one client
// repeatedly fetched the project home page).
func AttackThroughput(srv servers.Server, mode fo.Mode, poolSize, legitN, attacksPerLegit int) (ThroughputResult, error) {
	pool, err := NewChildPool(srv, mode, poolSize)
	if err != nil {
		return ThroughputResult{}, err
	}
	defer pool.Close()
	legit := srv.LegitRequests()[0]
	attack := srv.AttackRequest()
	res := ThroughputResult{Mode: mode}
	start := time.Now()
	for i := 0; i < legitN; i++ {
		for a := 0; a < attacksPerLegit; a++ {
			if _, err := pool.Handle(attack); err != nil {
				return res, err
			}
			res.Attacks++
		}
		resp, err := pool.Handle(legit)
		if err != nil {
			return res, err
		}
		if resp.Crashed() {
			// A legit request landed on a child the attack killed in
			// Standard mode before the crash was observed; it is lost
			// (the real client would retry). Count it as not done.
			continue
		}
		res.LegitDone++
	}
	res.Elapsed = time.Since(start)
	res.Restarts = pool.Restarts()
	if res.Elapsed > 0 {
		res.Throughput = float64(res.LegitDone) / res.Elapsed.Seconds()
	}
	return res, nil
}

// FormatThroughput renders §4.3.2-style results with ratios relative to the
// FailureOblivious row (which the paper reports as roughly 5.7x the Bounds
// Check version and 4.8x the Standard version).
func FormatThroughput(rows []ThroughputResult) string {
	var foThroughput float64
	for _, r := range rows {
		if r.Mode == fo.FailureOblivious {
			foThroughput = r.Throughput
		}
	}
	out := fmt.Sprintf("%-18s %-12s %-10s %-12s %s\n",
		"Version", "Legit req/s", "Restarts", "Legit done", "FO speedup")
	for _, r := range rows {
		ratio := "1.0"
		if r.Throughput > 0 && foThroughput > 0 && r.Mode != fo.FailureOblivious {
			ratio = fmt.Sprintf("%.1f", foThroughput/r.Throughput)
		}
		out += fmt.Sprintf("%-18s %-12.1f %-10d %-12d %s\n",
			r.Mode, r.Throughput, r.Restarts, r.LegitDone, ratio)
	}
	return out
}
