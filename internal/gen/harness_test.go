package gen_test

// End-to-end harness for the code generator: emit Go for an arbitrary
// program that is NOT part of the checked-in gencorpus, build it with the
// real Go toolchain inside this module, and run a differential check of
// the generated engine against the tree-walk and compiled engines across
// every mode. This is the proof that -emit-go output is self-contained:
// it needs only the focc module to compile, and registering it by source
// hash is enough for fo.MachineConfig{UseGenerated: true} to find it.

import (
	"bytes"
	"fmt"
	"go/parser"
	"go/token"
	"os"
	"os/exec"
	"path/filepath"
	"testing"

	"focc/fo"
	"focc/internal/gen"
)

// harnessSrc is deliberately absent from internal/corpus: the point is to
// prove codegen works for programs with no pre-registered generated code.
const harnessSrc = `
#include <stdio.h>
#include <string.h>

int tab[8];

struct span { int lo; int hi; };

int fill(int n) {
	int i;
	for (i = 0; i < n; i++)
		tab[i & 15] = i * 3;	/* i&15 still overruns tab for i >= 8 */
	return tab[0] + tab[7];
}

int clamp(struct span *s, int v) {
	if (v < s->lo)
		return s->lo;
	if (v > s->hi)
		return s->hi;
	return v;
}

int scan(const char *s) {
	int acc = 0;
	while (*s) {
		acc = acc * 31 + *s;
		s++;
	}
	return acc;
}

int main(void) {
	struct span sp;
	char buf[8];
	int r = fill(12);	/* out-of-bounds writes past tab[7] */
	sp.lo = 3;
	sp.hi = 40;
	r += clamp(&sp, 100);
	strcpy(buf, "harness");
	r += scan(buf);
	printf("r=%d\n", r);
	return r & 0xff;
}
`

const harnessFile = "harness.c"

// runnerTmpl is the main.go written next to the emitted file. It compiles
// the identical (filename, source) pair — so the source hash matches the
// init-time registration in the emitted file — and requires all three
// engines to agree on every observable in every mode.
const runnerTmpl = `package main

import (
	"bytes"
	"fmt"
	"os"
	"reflect"

	"focc/fo"
)

const fileName = %q
const src = %q

type obs struct {
	outcome  fo.Outcome
	value    int64
	exitCode int
	errText  string
	cycles   uint64
	out      string
	log      fo.LogSnapshot
}

func runOne(mode fo.Mode, engine string) obs {
	prog, err := fo.Compile(fileName, src)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	var buf bytes.Buffer
	m, err := prog.NewMachine(fo.MachineConfig{
		Mode:         mode,
		Out:          &buf,
		Log:          fo.NewEventLog(0),
		TreeWalk:     engine == "tree-walk",
		UseGenerated: engine == "codegen",
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "%%s: %%v\n", engine, err)
		os.Exit(1)
	}
	res := m.Run()
	o := obs{
		outcome:  res.Outcome,
		value:    res.Value.I,
		exitCode: res.ExitCode,
		cycles:   m.SimCycles(),
		out:      buf.String(),
		log:      m.Log().Snapshot(),
	}
	if res.Err != nil {
		o.errText = res.Err.Error()
	}
	return o
}

func main() {
	modes := []string{"standard", "bounds", "oblivious", "boundless", "redirect", "txterm", "rewind"}
	for _, name := range modes {
		mode, err := fo.ParseMode(name)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		ref := runOne(mode, "tree-walk")
		for _, engine := range []string{"compiled", "codegen"} {
			got := runOne(mode, engine)
			if !reflect.DeepEqual(got, ref) {
				fmt.Fprintf(os.Stderr, "%%s/%%s diverges:\n  tree-walk %%+v\n  %%-9s %%+v\n",
					name, engine, ref, engine, got)
				os.Exit(1)
			}
		}
	}
	fmt.Println("OK")
}
`

// TestEmitBuildAndDiff emits Go for harnessSrc into a temp dir under
// testdata (inside the module, so focc/... imports resolve; go's ./...
// wildcard never descends into testdata), builds and runs it with the
// real toolchain, and checks the three-engine differential passes.
func TestEmitBuildAndDiff(t *testing.T) {
	if testing.Short() {
		t.Skip("invokes the go toolchain")
	}
	goBin, err := exec.LookPath("go")
	if err != nil {
		t.Skipf("go toolchain not on PATH: %v", err)
	}

	prog, err := fo.Compile(harnessFile, harnessSrc)
	if err != nil {
		t.Fatal(err)
	}
	code, err := gen.Emit(prog.Sema(), gen.Options{
		Package:  "main",
		Hash:     prog.SourceHash(),
		Register: true,
	})
	if err != nil {
		t.Fatal(err)
	}

	if err := os.MkdirAll("testdata", 0o755); err != nil {
		t.Fatal(err)
	}
	dir, err := os.MkdirTemp("testdata", "harness-*")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { os.RemoveAll(dir) })

	if err := os.WriteFile(filepath.Join(dir, "harness_gen.go"), code, 0o644); err != nil {
		t.Fatal(err)
	}
	runner := fmt.Sprintf(runnerTmpl, harnessFile, harnessSrc)
	if err := os.WriteFile(filepath.Join(dir, "main.go"), []byte(runner), 0o644); err != nil {
		t.Fatal(err)
	}

	cmd := exec.Command(goBin, "run", "./"+dir)
	var out, errb bytes.Buffer
	cmd.Stdout = &out
	cmd.Stderr = &errb
	if err := cmd.Run(); err != nil {
		t.Fatalf("go run: %v\nstdout: %s\nstderr: %s", err, out.String(), errb.String())
	}
	if got := out.String(); got != "OK\n" {
		t.Fatalf("runner output = %q, want OK", got)
	}
}

// TestEmitDeterministic pins that emission is a pure function of the
// analyzed program: two Emit calls must produce byte-identical output
// (the CI drift gate `go generate ./... && git diff --exit-code` depends
// on this), and the output must be syntactically valid Go.
func TestEmitDeterministic(t *testing.T) {
	prog, err := fo.Compile(harnessFile, harnessSrc)
	if err != nil {
		t.Fatal(err)
	}
	opt := gen.Options{Package: "harness", Prefix: "h_", Register: true}
	a, err := gen.Emit(prog.Sema(), opt)
	if err != nil {
		t.Fatal(err)
	}
	b, err := gen.Emit(prog.Sema(), opt)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Fatal("two Emit calls over the same program differ")
	}
	if _, err := parser.ParseFile(token.NewFileSet(), "harness_gen.go", a, 0); err != nil {
		t.Fatalf("emitted code does not parse: %v", err)
	}
}
