package mc

import (
	"strings"
	"testing"

	"focc/fo"
	"focc/internal/servers"
)

func newInstance(t *testing.T, mode fo.Mode) (*Server, *Instance) {
	t.Helper()
	srv := NewServer()
	inst, err := srv.New(mode)
	if err != nil {
		t.Fatalf("New(%v): %v", mode, err)
	}
	return srv, inst.(*Instance)
}

func TestCompiles(t *testing.T) {
	if _, err := Program(); err != nil {
		t.Fatalf("compile: %v", err)
	}
}

func TestCopyFile(t *testing.T) {
	for _, mode := range []fo.Mode{fo.Standard, fo.BoundsCheck, fo.FailureOblivious} {
		_, inst := newInstance(t, mode)
		resp := inst.Handle(servers.Request{Op: "copy", Arg: "/home/user/big.dat"})
		if !resp.OK() || resp.Status != 256*1024 {
			t.Errorf("%v: copy = %v, want %d bytes", mode, resp, 256*1024)
		}
	}
}

func TestMoveMkdirDelete(t *testing.T) {
	srv, inst := newInstance(t, fo.BoundsCheck)
	resp := inst.Handle(servers.Request{Op: "move", Arg: "/home/user/notes.txt:/tmp/notes.txt"})
	if !resp.OK() || resp.Status != 0 {
		t.Fatalf("move = %v", resp)
	}
	if _, ok := srv.FS["/tmp/notes.txt"]; !ok {
		t.Error("move did not land in the VFS")
	}
	resp = inst.Handle(servers.Request{Op: "mkdir", Arg: "/a//b///c"})
	if !resp.OK() || resp.Status != 0 {
		t.Fatalf("mkdir = %v", resp)
	}
	if _, ok := srv.FS["/a/b/c/"]; !ok {
		t.Error("mkdir path not canonicalized to /a/b/c")
	}
	resp = inst.Handle(servers.Request{Op: "delete", Arg: "/tmp/small.dat"})
	if !resp.OK() || resp.Status != 0 {
		t.Fatalf("delete = %v", resp)
	}
}

func TestTgzAttackOutcomesPerMode(t *testing.T) {
	srv := NewServer()
	attack := srv.AttackRequest()

	_, std := newInstance(t, fo.Standard)
	resp := std.Handle(attack)
	if resp.Outcome != fo.OutcomeStackSmash && resp.Outcome != fo.OutcomeSegfault {
		t.Errorf("standard: outcome = %v (%v), want stack smash/segfault", resp.Outcome, resp.Err)
	}

	_, bc := newInstance(t, fo.BoundsCheck)
	resp = bc.Handle(attack)
	if resp.Outcome != fo.OutcomeMemErrorTermination {
		t.Errorf("bounds: outcome = %v, want termination", resp.Outcome)
	}

	_, foi := newInstance(t, fo.FailureOblivious)
	resp = foi.Handle(attack)
	if !resp.OK() {
		t.Fatalf("oblivious: crashed: %v", resp)
	}
	// Every link shows as dangling (the anticipated case) and the user
	// can continue working.
	if resp.Status != 25 {
		t.Errorf("oblivious: dangling = %d, want 25", resp.Status)
	}
	resp = foi.Handle(servers.Request{Op: "copy", Arg: "/home/user/big.dat"})
	if !resp.OK() || resp.Status != 256*1024 {
		t.Errorf("oblivious: post-attack copy = %v", resp)
	}
}

func TestBlankConfigLine(t *testing.T) {
	// Paper §4.5.4: a blank config line commits a memory error that
	// disables the Bounds Check version; Standard executes it benignly;
	// Failure Oblivious logs it and keeps going.
	_, std := newInstance(t, fo.Standard)
	resp := std.Handle(servers.Request{Op: "config", Payload: BlankConfig()})
	if !resp.OK() || resp.Status != 3 {
		t.Errorf("standard config = %v, want 3 parsed entries", resp)
	}

	_, bc := newInstance(t, fo.BoundsCheck)
	resp = bc.Handle(servers.Request{Op: "config", Payload: BlankConfig()})
	if resp.Outcome != fo.OutcomeMemErrorTermination {
		t.Errorf("bounds config = %v, want termination", resp.Outcome)
	}
	// Removing the blank lines re-enables it (what the authors had to do).
	_, bc2 := newInstance(t, fo.BoundsCheck)
	clean := strings.ReplaceAll(BlankConfig(), "\n\n", "\n")
	resp = bc2.Handle(servers.Request{Op: "config", Payload: clean})
	if !resp.OK() || resp.Status != 3 {
		t.Errorf("bounds clean config = %v, want 3", resp)
	}

	_, foi := newInstance(t, fo.FailureOblivious)
	resp = foi.Handle(servers.Request{Op: "config", Payload: BlankConfig()})
	if !resp.OK() || resp.Status != 3 {
		t.Errorf("oblivious config = %v, want 3", resp)
	}
	if foi.Log().InvalidReads() == 0 {
		t.Error("oblivious: expected logged invalid reads for blank lines")
	}
}

func TestFirstLinkLookupFailsEvenWhenInBounds(t *testing.T) {
	// Paper §4.5.2: the lookup fails "apparently even for the first
	// symbolic link" — the relative prefix makes the name miss the VFS.
	srv, inst := newInstance(t, fo.FailureOblivious)
	srv.Links = nil
	resp := inst.Handle(servers.Request{Op: "open-tgz", Arg: "notes.txt"})
	if !resp.OK() || resp.Status != 1 {
		t.Errorf("single link = %v, want 1 dangling", resp)
	}
}
