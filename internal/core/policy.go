// Package core implements failure-oblivious computing: the checking code
// and the continuation code the paper's compiler inserts around every
// memory access. The five access policies correspond to the paper's
// compilation modes:
//
//   - Standard: no checks; raw address-space semantics (unsafe C).
//   - BoundsCheck: CRED semantics — terminate with a memory error at the
//     first invalid access (paper's "Bounds Check" version).
//   - FailureOblivious: discard invalid writes, manufacture a value
//     sequence for invalid reads, keep executing (paper §1.1, §3).
//   - Boundless: store invalid writes in a hash table keyed by
//     (data unit, offset) and return them for matching invalid reads
//     (paper §5.1, "boundless memory blocks").
//   - Redirect: wrap out-of-bounds offsets back into the accessed data
//     unit (paper §5.1, "redirects out of bounds accesses back into the
//     accessed data unit at an appropriate offset").
//
// Two further policies extend the paper's comparison: TxTerm (§5.2's
// transactional function termination, txterm.go) and ModeRewind (the
// rewind-and-discard checkpoint/rollback policy, rewind.go).
package core

import (
	"fmt"

	"focc/internal/cc/token"
	"focc/internal/mem"
)

// Mode selects the compilation/execution mode.
type Mode int

// Modes.
const (
	Standard Mode = iota
	BoundsCheck
	FailureOblivious
	Boundless
	Redirect
)

func (m Mode) String() string {
	switch m {
	case Standard:
		return "standard"
	case BoundsCheck:
		return "bounds-check"
	case FailureOblivious:
		return "failure-oblivious"
	case Boundless:
		return "boundless"
	case Redirect:
		return "redirect"
	case TxTerm:
		return "tx-term"
	case ModeRewind:
		return "rewind"
	case ModeFOContext:
		return "fo-context"
	}
	return "unknown-mode"
}

// ParseMode parses a mode name as accepted by the CLIs.
func ParseMode(s string) (Mode, error) {
	switch s {
	case "standard", "std":
		return Standard, nil
	case "bounds", "bounds-check", "cred":
		return BoundsCheck, nil
	case "oblivious", "failure-oblivious", "fo":
		return FailureOblivious, nil
	case "boundless":
		return Boundless, nil
	case "redirect":
		return Redirect, nil
	case "txterm", "tx-term":
		return TxTerm, nil
	case "rewind":
		return ModeRewind, nil
	case "fo-context", "context":
		return ModeFOContext, nil
	}
	return Standard, fmt.Errorf("unknown mode %q (want standard, bounds, oblivious, boundless, redirect, txterm, rewind, or fo-context)", s)
}

// Pointer is a runtime pointer value: an address plus the provenance data
// unit it was derived from (CRED-style; provenance survives out-of-bounds
// arithmetic so the check happens at dereference time).
type Pointer struct {
	Addr uint64
	Prov *mem.Unit
}

// MemError is the error the BoundsCheck mode terminates with — the paper's
// safe-C compiler "exits with an error message when it detects a memory
// error".
type MemError struct {
	Pos   token.Pos
	Write bool
	Addr  uint64
	Size  int
	Unit  string // provenance unit name, if any
	Cause string
}

func (e *MemError) Error() string {
	op := "read"
	if e.Write {
		op = "write"
	}
	u := e.Unit
	if u == "" {
		u = "<no data unit>"
	}
	return fmt.Sprintf("%s: memory error: out of bounds %s of %d bytes at 0x%x (unit %s): %s",
		e.Pos, op, e.Size, e.Addr, u, e.Cause)
}

// Accessor is the memory access path the interpreter routes every C-level
// load and store through. Checking code and continuation code live behind
// this interface.
type Accessor interface {
	// Mode identifies the policy.
	Mode() Mode
	// Load reads len(buf) bytes at p. It returns the provenance of a
	// pointer value loaded from memory (when one is known) and an error
	// only when the policy terminates the program (BoundsCheck) or the
	// simulated hardware faults (Standard).
	Load(p Pointer, buf []byte, pos token.Pos) (*mem.Unit, error)
	// Store writes data at p. prov is the provenance of the value being
	// stored when it is a pointer (nil otherwise).
	Store(p Pointer, data []byte, prov *mem.Unit, pos token.Pos) error
}

// inBounds reports whether an access of n bytes at p lies entirely within
// the live provenance unit.
func inBounds(p Pointer, n int) bool {
	u := p.Prov
	if u == nil || u.Dead {
		return false
	}
	return p.Addr >= u.Base && p.Addr+uint64(n) <= u.End()
}

// unitName is a diagnostic helper.
func unitName(u *mem.Unit) string {
	if u == nil {
		return ""
	}
	return u.Name
}

// table is the Jones–Kelly object-table lookup every *checked* access
// performs — exactly as the CRED implementation consults its object table
// on each checked dereference. The lookup's cost is what the simulated
// cycle model charges on every checked access (interp.CheckCycles,
// regardless of what the Go implementation does); the Go-level lookup is
// only materialized where its result is observable — naming the unit an
// out-of-bounds access would actually have touched, which the event log
// reports as the would-be victim — and goes through a per-accessor
// monomorphic cache, since attack loops hammer the same victim.
type table struct {
	as *mem.AddressSpace
	c  mem.LookupCache
}

func (t *table) lookup(addr uint64) *mem.Unit { return t.as.FindUnitCached(addr, &t.c) }

// --- Standard (unsafe) ---

type standardAccessor struct {
	as *mem.AddressSpace
}

// NewStandard returns the unsafe Standard-mode accessor. In-bounds accesses
// take a direct path (uninstrumented code performs no lookups); everything
// else resolves by raw address through the address space, where it corrupts
// whatever it lands on.
func NewStandard(as *mem.AddressSpace) Accessor { return &standardAccessor{as: as} }

func (a *standardAccessor) Mode() Mode { return Standard }

func (a *standardAccessor) Load(p Pointer, buf []byte, _ token.Pos) (*mem.Unit, error) {
	if inBounds(p, len(buf)) {
		off := p.Addr - p.Prov.Base
		copy(buf, p.Prov.Data[off:])
		if len(buf) == 8 {
			return p.Prov.GetShadow(off), nil
		}
		return nil, nil
	}
	if f := a.as.RawRead(p.Addr, buf); f != nil {
		return nil, f
	}
	// Best-effort provenance for pointer loads that land inside one unit.
	if len(buf) == 8 {
		if u := a.as.FindUnit(p.Addr); u != nil {
			return u.GetShadow(p.Addr - u.Base), nil
		}
	}
	return nil, nil
}

func (a *standardAccessor) Store(p Pointer, data []byte, prov *mem.Unit, _ token.Pos) error {
	if inBounds(p, len(data)) && !p.Prov.ReadOnly {
		off := p.Addr - p.Prov.Base
		copy(p.Prov.Data[off:], data)
		if prov != nil && len(data) == 8 {
			p.Prov.SetShadow(off, prov)
		} else {
			p.Prov.ClearShadowRange(off, uint64(len(data)))
		}
		return nil
	}
	if f := a.as.RawWrite(p.Addr, data); f != nil {
		return f
	}
	if prov != nil && len(data) == 8 {
		if u := a.as.FindUnit(p.Addr); u != nil {
			u.SetShadow(p.Addr-u.Base, prov)
		}
	}
	return nil
}

// --- BoundsCheck (CRED) ---

type boundsAccessor struct {
	table
	log *EventLog
}

// NewBoundsCheck returns the CRED-style accessor: first invalid access
// terminates the program with a MemError.
func NewBoundsCheck(as *mem.AddressSpace, log *EventLog) Accessor {
	return &boundsAccessor{table: table{as: as}, log: log}
}

func (a *boundsAccessor) Mode() Mode { return BoundsCheck }

func describeOOB(p Pointer, n int) string {
	switch {
	case p.Addr == 0:
		return "null pointer dereference"
	case p.Prov == nil:
		return "pointer with no valid data unit"
	case p.Prov.Dead:
		return "access to freed or popped data unit"
	default:
		return fmt.Sprintf("offset %d outside unit of %d bytes",
			int64(p.Addr-p.Prov.Base), p.Prov.Size)
	}
}

func (a *boundsAccessor) Load(p Pointer, buf []byte, pos token.Pos) (*mem.Unit, error) {
	if !inBounds(p, len(buf)) {
		victim := a.lookup(p.Addr)
		a.log.addDenied(Event{Pos: pos, Addr: p.Addr, Size: len(buf),
			Unit: unitName(p.Prov), Victim: unitName(victim)})
		return nil, &MemError{Pos: pos, Addr: p.Addr, Size: len(buf),
			Unit: unitName(p.Prov), Cause: describeOOB(p, len(buf))}
	}
	off := p.Addr - p.Prov.Base
	copy(buf, p.Prov.Data[off:])
	if len(buf) == 8 {
		return p.Prov.GetShadow(off), nil
	}
	return nil, nil
}

func (a *boundsAccessor) Store(p Pointer, data []byte, prov *mem.Unit, pos token.Pos) error {
	if !inBounds(p, len(data)) || p.Prov.ReadOnly {
		victim := a.lookup(p.Addr)
		cause := describeOOB(p, len(data))
		if inBounds(p, len(data)) && p.Prov.ReadOnly {
			cause = "write to read-only data unit"
		}
		a.log.addDenied(Event{Pos: pos, Write: true, Addr: p.Addr,
			Size: len(data), Unit: unitName(p.Prov), Victim: unitName(victim)})
		return &MemError{Pos: pos, Write: true, Addr: p.Addr,
			Size: len(data), Unit: unitName(p.Prov), Cause: cause}
	}
	off := p.Addr - p.Prov.Base
	copy(p.Prov.Data[off:], data)
	if prov != nil && len(data) == 8 {
		p.Prov.SetShadow(off, prov)
	} else {
		p.Prov.ClearShadowRange(off, uint64(len(data)))
	}
	return nil
}

// --- FailureOblivious ---

type obliviousAccessor struct {
	table
	gen ValueGenerator
	log *EventLog
}

// NewFailureOblivious returns the paper's failure-oblivious accessor:
// invalid writes are discarded, invalid reads return values from gen, and
// every event is logged (paper §3).
func NewFailureOblivious(as *mem.AddressSpace, gen ValueGenerator, log *EventLog) Accessor {
	return &obliviousAccessor{table: table{as: as}, gen: gen, log: log}
}

func (a *obliviousAccessor) Mode() Mode { return FailureOblivious }

func (a *obliviousAccessor) Load(p Pointer, buf []byte, pos token.Pos) (*mem.Unit, error) {
	if !inBounds(p, len(buf)) {
		victim := a.lookup(p.Addr)
		v := a.gen.Next(len(buf))
		putLE(buf, v)
		a.log.add(Event{Pos: pos, Addr: p.Addr, Size: len(buf),
			Unit: unitName(p.Prov), Victim: unitName(victim), Manufactured: v})
		return nil, nil
	}
	off := p.Addr - p.Prov.Base
	copy(buf, p.Prov.Data[off:])
	if len(buf) == 8 {
		return p.Prov.GetShadow(off), nil
	}
	return nil, nil
}

func (a *obliviousAccessor) Store(p Pointer, data []byte, prov *mem.Unit, pos token.Pos) error {
	if !inBounds(p, len(data)) || p.Prov.ReadOnly {
		// Continuation code: discard the write.
		victim := a.lookup(p.Addr)
		a.log.add(Event{Pos: pos, Write: true, Addr: p.Addr,
			Size: len(data), Unit: unitName(p.Prov), Victim: unitName(victim)})
		return nil
	}
	off := p.Addr - p.Prov.Base
	copy(p.Prov.Data[off:], data)
	if prov != nil && len(data) == 8 {
		p.Prov.SetShadow(off, prov)
	} else {
		p.Prov.ClearShadowRange(off, uint64(len(data)))
	}
	return nil
}

// --- Boundless memory blocks (paper §5.1) ---

// sideKey addresses the side store. For byte state it is keyed at word
// granularity: off is the signed unit-relative byte offset arithmetically
// shifted right by 3, so eight neighbouring out-of-bounds bytes share one
// entry (the paper's hash table stores values, not bytes; keying per byte
// made an 8-byte OOB store cost eight map inserts). Pointer provenance
// (sideP) is keyed by exact byte offset.
type sideKey struct {
	unit mem.UnitID
	off  int64
}

// sideWord holds up to eight stored out-of-bounds bytes of one aligned
// word; bit i of mask marks data[i] as present.
type sideWord struct {
	data [8]byte
	mask uint8
}

// sideWordCap bounds each generation of the side store. The paper's
// implementation uses a fixed-size hash table with LRU replacement so a
// long-running attack cannot exhaust memory (§5.1); we approximate LRU
// with two generations: inserts go to the current generation, hits in the
// previous generation promote, and when the current generation fills, the
// previous one — everything not touched for a whole generation — is
// dropped. Worst-case resident state is 2×sideWordCap words.
const sideWordCap = 1 << 15

type boundlessAccessor struct {
	table
	gen  ValueGenerator
	log  *EventLog
	side map[sideKey]*sideWord
	prev map[sideKey]*sideWord
	// sideP / prevP carry the provenance of pointer values in the side
	// store; they rotate together with side/prev.
	sideP map[sideKey]*mem.Unit
	prevP map[sideKey]*mem.Unit
}

// NewBoundless returns the boundless-memory-blocks accessor: out-of-bounds
// writes are stored in a hash table indexed by data unit and offset, and
// out-of-bounds reads return the stored values (manufacturing values only
// for never-written locations). The table is bounded (see sideWordCap).
func NewBoundless(as *mem.AddressSpace, gen ValueGenerator, log *EventLog) Accessor {
	return &boundlessAccessor{
		table: table{as: as},
		gen:   gen, log: log,
		side:  map[sideKey]*sideWord{},
		sideP: map[sideKey]*mem.Unit{},
	}
}

func (a *boundlessAccessor) Mode() Mode { return Boundless }

func (a *boundlessAccessor) keyAt(p Pointer, i int) sideKey {
	if p.Prov == nil {
		return sideKey{unit: 0, off: int64(p.Addr) + int64(i)}
	}
	return sideKey{unit: p.Prov.ID, off: int64(p.Addr-p.Prov.Base) + int64(i)}
}

// wordKey maps a byte key to its word entry's key and in-word bit index.
func wordKey(k sideKey) (sideKey, uint) {
	return sideKey{unit: k.unit, off: k.off >> 3}, uint(k.off & 7)
}

// sideGet returns the word entry for wk, promoting hits from the previous
// generation.
func (a *boundlessAccessor) sideGet(wk sideKey) *sideWord {
	if w, ok := a.side[wk]; ok {
		return w
	}
	if w, ok := a.prev[wk]; ok {
		a.sideInsert(wk, w)
		return w
	}
	return nil
}

// sideInsert adds a word entry, rotating generations at capacity.
func (a *boundlessAccessor) sideInsert(wk sideKey, w *sideWord) {
	if len(a.side) >= sideWordCap {
		a.prev, a.side = a.side, make(map[sideKey]*sideWord, sideWordCap/4)
		a.prevP, a.sideP = a.sideP, make(map[sideKey]*mem.Unit, len(a.sideP)/4+1)
	}
	a.side[wk] = w
}

func (a *boundlessAccessor) sidePGet(k sideKey) *mem.Unit {
	if u, ok := a.sideP[k]; ok {
		return u
	}
	return a.prevP[k]
}

func (a *boundlessAccessor) Load(p Pointer, buf []byte, pos token.Pos) (*mem.Unit, error) {
	if !inBounds(p, len(buf)) {
		all := true
		var cur *sideWord
		curKey := sideKey{}
		haveCur := false
		missing := uint(0) // bit i: buf[i] had no stored byte
		for i := range buf {
			wk, bit := wordKey(a.keyAt(p, i))
			if !haveCur || wk != curKey {
				cur, curKey, haveCur = a.sideGet(wk), wk, true
			}
			if cur != nil && cur.mask&(1<<bit) != 0 {
				buf[i] = cur.data[bit]
			} else {
				all = false
				missing |= 1 << uint(i)
				buf[i] = 0
			}
		}
		var v int64
		if !all {
			// Never-written out-of-bounds location: manufacture.
			v = a.gen.Next(len(buf))
			for i := range buf {
				if missing&(1<<uint(i)) != 0 {
					buf[i] = byte(v >> (8 * uint(i)))
				}
			}
		}
		a.log.add(Event{Pos: pos, Addr: p.Addr, Size: len(buf),
			Unit: unitName(p.Prov), Manufactured: v, Boundless: all})
		if all && len(buf) == 8 {
			return a.sidePGet(a.keyAt(p, 0)), nil
		}
		return nil, nil
	}
	off := p.Addr - p.Prov.Base
	copy(buf, p.Prov.Data[off:])
	if len(buf) == 8 {
		return p.Prov.GetShadow(off), nil
	}
	return nil, nil
}

func (a *boundlessAccessor) Store(p Pointer, data []byte, prov *mem.Unit, pos token.Pos) error {
	if !inBounds(p, len(data)) || (p.Prov != nil && p.Prov.ReadOnly) {
		var cur *sideWord
		curKey := sideKey{}
		haveCur := false
		for i, b := range data {
			wk, bit := wordKey(a.keyAt(p, i))
			if !haveCur || wk != curKey {
				cur = a.sideGet(wk)
				if cur == nil {
					cur = &sideWord{}
					a.sideInsert(wk, cur)
				}
				curKey, haveCur = wk, true
			}
			cur.data[bit] = b
			cur.mask |= 1 << bit
		}
		if len(data) == 8 {
			k := a.keyAt(p, 0)
			if prov != nil {
				a.sideP[k] = prov
			} else {
				delete(a.sideP, k)
				delete(a.prevP, k)
			}
		}
		a.log.add(Event{Pos: pos, Write: true, Addr: p.Addr,
			Size: len(data), Unit: unitName(p.Prov), Boundless: true})
		return nil
	}
	off := p.Addr - p.Prov.Base
	copy(p.Prov.Data[off:], data)
	if prov != nil && len(data) == 8 {
		p.Prov.SetShadow(off, prov)
	} else {
		p.Prov.ClearShadowRange(off, uint64(len(data)))
	}
	return nil
}

// --- Redirect into bounds (paper §5.1) ---

type redirectAccessor struct {
	table
	gen ValueGenerator
	log *EventLog
}

// NewRedirect returns the redirect-into-bounds accessor: out-of-bounds
// offsets wrap modulo the unit size, so related out-of-bounds reads see
// consistent values from properly initialized data. Accesses with no live
// unit fall back to failure-oblivious behaviour.
func NewRedirect(as *mem.AddressSpace, gen ValueGenerator, log *EventLog) Accessor {
	return &redirectAccessor{table: table{as: as}, gen: gen, log: log}
}

func (a *redirectAccessor) Mode() Mode { return Redirect }

func (a *redirectAccessor) Load(p Pointer, buf []byte, pos token.Pos) (*mem.Unit, error) {
	a.lookup(p.Addr)
	if inBounds(p, len(buf)) {
		off := p.Addr - p.Prov.Base
		copy(buf, p.Prov.Data[off:])
		if len(buf) == 8 {
			return p.Prov.GetShadow(off), nil
		}
		return nil, nil
	}
	u := p.Prov
	if u == nil || u.Dead || u.Size == 0 {
		v := a.gen.Next(len(buf))
		putLE(buf, v)
		a.log.add(Event{Pos: pos, Addr: p.Addr, Size: len(buf),
			Unit: unitName(u), Manufactured: v})
		return nil, nil
	}
	for i := range buf {
		off := wrapOffset(p.Addr+uint64(i)-u.Base, u.Size)
		buf[i] = u.Data[off]
	}
	a.log.add(Event{Pos: pos, Addr: p.Addr, Size: len(buf),
		Unit: u.Name, Redirected: true})
	return nil, nil
}

func (a *redirectAccessor) Store(p Pointer, data []byte, prov *mem.Unit, pos token.Pos) error {
	a.lookup(p.Addr)
	if inBounds(p, len(data)) && !p.Prov.ReadOnly {
		off := p.Addr - p.Prov.Base
		copy(p.Prov.Data[off:], data)
		if prov != nil && len(data) == 8 {
			p.Prov.SetShadow(off, prov)
		} else {
			p.Prov.ClearShadowRange(off, uint64(len(data)))
		}
		return nil
	}
	u := p.Prov
	if u == nil || u.Dead || u.ReadOnly || u.Size == 0 {
		a.log.add(Event{Pos: pos, Write: true, Addr: p.Addr,
			Size: len(data), Unit: unitName(u)})
		return nil
	}
	for i, b := range data {
		off := wrapOffset(p.Addr+uint64(i)-u.Base, u.Size)
		u.Data[off] = b
	}
	u.ClearShadowRange(0, u.Size)
	a.log.add(Event{Pos: pos, Write: true, Addr: p.Addr,
		Size: len(data), Unit: u.Name, Redirected: true})
	return nil
}

// wrapOffset maps an arbitrary (possibly negative, i.e. huge unsigned)
// offset into [0, size).
func wrapOffset(off, size uint64) uint64 {
	s := int64(size)
	o := int64(off) % s
	if o < 0 {
		o += s
	}
	return uint64(o)
}

// putLE stores the low len(buf) bytes of v little-endian.
func putLE(buf []byte, v int64) {
	for i := range buf {
		buf[i] = byte(v >> (8 * uint(i)))
	}
}

// New returns an accessor for the given mode. gen and log may be nil, in
// which case the paper's small-integer generator and a fresh log are used.
func New(mode Mode, as *mem.AddressSpace, gen ValueGenerator, log *EventLog) Accessor {
	if gen == nil {
		gen = NewSmallIntGenerator()
	}
	if log == nil {
		log = NewEventLog(0)
	}
	switch mode {
	case Standard:
		return NewStandard(as)
	case BoundsCheck:
		return NewBoundsCheck(as, log)
	case FailureOblivious:
		return NewFailureOblivious(as, gen, log)
	case Boundless:
		return NewBoundless(as, gen, log)
	case Redirect:
		return NewRedirect(as, gen, log)
	case TxTerm:
		return NewTxTerm(as, log)
	case ModeRewind:
		return NewRewind(as, log)
	case ModeFOContext:
		cg, ok := gen.(ContextGenerator)
		if !ok {
			cg = &fallbackContext{gen: gen}
		}
		return NewFOContext(as, cg, log)
	}
	panic(fmt.Sprintf("core.New: unknown mode %d", mode))
}
